"""LightGCN [He et al. 2020] — a post-paper graph CF reference point.

Not one of the paper's baselines (it appeared the same year), but the
de-facto modern graph-CF baseline; included as an extension so downstream
users can compare PUP against the simplified propagation family.

LightGCN drops feature transforms and non-linearities entirely: embeddings
propagate over the symmetrically-normalized bipartite adjacency and the
final representation is the mean of the layer outputs (including layer 0).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.base import Recommender, ScoreBranch
from ..experiments.registry import register_model
from ..data.dataset import Dataset
from ..nn import Embedding, Tensor


def _symmetric_normalized_bipartite(dataset: Dataset, dtype=None) -> sp.csr_matrix:
    """``D^-1/2 (A) D^-1/2`` over the user-item bipartite graph (no self-loops,
    per the LightGCN formulation)."""
    n = dataset.n_users + dataset.n_items
    rows = dataset.train.users
    cols = dataset.train.items + dataset.n_users
    data = np.ones(len(rows))
    upper = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    matrix = (upper + upper.T).tocsr()
    matrix.data[:] = 1.0
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)
    scale = sp.diags(inv_sqrt)
    normalized = (scale @ matrix @ scale).tocsr()
    if dtype is not None:
        normalized = normalized.astype(np.dtype(dtype))
    return normalized


@register_model("lightgcn")
class LightGCN(Recommender):
    """K-layer LightGCN with mean layer combination."""

    name = "LightGCN"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 64,
        n_layers: int = 2,
        rng: Optional[np.random.Generator] = None,
        embedding_std: float = 0.1,
    ) -> None:
        super().__init__(dataset)
        if n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {n_layers}")
        rng = rng or np.random.default_rng()
        self.n_layers = n_layers
        self.embedding = Embedding(self.n_users + self.n_items, dim, rng=rng, std=embedding_std)
        self._adjacency = _symmetric_normalized_bipartite(
            dataset, dtype=self.embedding.weight.data.dtype
        )

    def _propagate(self) -> Tensor:
        layer = self.embedding.all()
        total = layer
        for _ in range(self.n_layers):
            # The symmetrically-normalized adjacency is its own transpose, so
            # the backward pass reuses the forward matrix.
            layer = layer.sparse_matmul(self._adjacency, transpose=self._adjacency)
            total = total + layer
        return total * (1.0 / (self.n_layers + 1))

    def _propagate_inference(self) -> np.ndarray:
        layer = self.embedding.weight.data
        total = layer.copy()
        for _ in range(self.n_layers):
            layer = self._adjacency @ layer
            total += layer
        return total / (self.n_layers + 1)

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users, items = self._check_pair_shapes(users, items)
        table = self._propagate()
        user_rows = table.gather_rows(users)
        item_rows = table.gather_rows(items + self.n_users)
        return (user_rows * item_rows).sum(axis=1)

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        table = self._propagate()
        user_rows = table.gather_rows(users)
        pos_rows = table.gather_rows(pos_items + self.n_users)
        neg_rows = table.gather_rows(neg_items + self.n_users)
        pos = (user_rows * pos_rows).sum(axis=1)
        neg = (user_rows * neg_rows).sum(axis=1)
        return pos, neg, [user_rows, pos_rows, neg_rows]

    # predict_scores inherited: frozen branches + the shared scoring kernel.
    def export_embeddings(self) -> List[ScoreBranch]:
        table = self._propagate_inference()
        return [ScoreBranch(user=table[: self.n_users], item=table[self.n_users :])]
