"""Graph substrate: the unified heterogeneous graph and its adjacency."""

from .hetero import HeteroGraph, NodeSpace

__all__ = ["HeteroGraph", "NodeSpace"]
