"""The unified heterogeneous graph of Section III-A.

Four node types — users, items, prices, categories — in one id space:

    [0, M)                    users
    [M, M+N)                  items
    [M+N, M+N+C)              categories
    [M+N+C, M+N+C+P)          price levels

Edges: (u, i) for every train interaction, (i, c_i) and (i, p_i) for every
item, plus self-loops on every node (added by the adjacency builder).

:class:`NodeSpace` handles the id arithmetic; :class:`HeteroGraph` builds the
edge list from a :class:`~repro.data.dataset.Dataset` and can drop the price
and/or category edges — that is how the PUP ablations ("PUP w/o c,p",
"PUP w/ c", "PUP w/ p", "PUP−") are constructed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp

from ..data.dataset import Dataset


@dataclass(frozen=True)
class NodeSpace:
    """Index arithmetic for the unified node id space.

    ``n_profiles`` supports the paper's Section VII extension: user-profile
    attributes as a fifth node type linked to user nodes.  It defaults to 0
    (the paper's main model).
    """

    n_users: int
    n_items: int
    n_categories: int
    n_price_levels: int
    n_profiles: int = 0

    @property
    def total(self) -> int:
        return (
            self.n_users
            + self.n_items
            + self.n_categories
            + self.n_price_levels
            + self.n_profiles
        )

    # --- offsets -------------------------------------------------------
    @property
    def item_offset(self) -> int:
        return self.n_users

    @property
    def category_offset(self) -> int:
        return self.n_users + self.n_items

    @property
    def price_offset(self) -> int:
        return self.n_users + self.n_items + self.n_categories

    @property
    def profile_offset(self) -> int:
        return self.n_users + self.n_items + self.n_categories + self.n_price_levels

    # --- encoders ------------------------------------------------------
    def user(self, user_ids: np.ndarray) -> np.ndarray:
        """Global node ids of users (identity mapping, validated)."""
        ids = np.asarray(user_ids, dtype=np.int64)
        self._check(ids, 0, self.n_users, "user")
        return ids

    def item(self, item_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(item_ids, dtype=np.int64)
        self._check(ids, 0, self.n_items, "item")
        return ids + self.item_offset

    def category(self, category_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(category_ids, dtype=np.int64)
        self._check(ids, 0, self.n_categories, "category")
        return ids + self.category_offset

    def price(self, price_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(price_ids, dtype=np.int64)
        self._check(ids, 0, self.n_price_levels, "price")
        return ids + self.price_offset

    def profile(self, profile_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(profile_ids, dtype=np.int64)
        self._check(ids, 0, self.n_profiles, "profile")
        return ids + self.profile_offset

    @staticmethod
    def _check(ids: np.ndarray, lo: int, hi: int, kind: str) -> None:
        if ids.size and (ids.min() < lo or ids.max() >= hi):
            raise IndexError(f"{kind} id out of range [{lo}, {hi})")

    def node_type(self, node_id: int) -> str:
        """Classify a global node id ('user'/'item'/'category'/'price')."""
        if not 0 <= node_id < self.total:
            raise IndexError(f"node id {node_id} out of range [0, {self.total})")
        if node_id < self.item_offset:
            return "user"
        if node_id < self.category_offset:
            return "item"
        if node_id < self.price_offset:
            return "category"
        if node_id < self.profile_offset:
            return "price"
        return "profile"


class HeteroGraph:
    """Edge list + node space for one encoder branch of PUP.

    Parameters
    ----------
    dataset:
        Source of interactions and item attributes.
    include_prices / include_categories:
        Drop the corresponding attribute edges *and nodes are kept but
        isolated* (they only self-loop), which matches removing the factor
        from the model while keeping tensor shapes stable for ablations.
    """

    def __init__(
        self,
        dataset: Dataset,
        include_prices: bool = True,
        include_categories: bool = True,
        user_profiles: Optional[np.ndarray] = None,
        n_profiles: int = 0,
    ) -> None:
        if user_profiles is not None:
            user_profiles = np.asarray(user_profiles, dtype=np.int64)
            if len(user_profiles) != dataset.n_users:
                raise ValueError(
                    f"user_profiles has {len(user_profiles)} entries for "
                    f"{dataset.n_users} users"
                )
            if n_profiles < 1:
                raise ValueError("n_profiles must be >= 1 when user_profiles is given")
        elif n_profiles:
            raise ValueError("n_profiles given without user_profiles")

        self.space = NodeSpace(
            n_users=dataset.n_users,
            n_items=dataset.n_items,
            n_categories=dataset.n_categories,
            n_price_levels=dataset.n_price_levels,
            n_profiles=n_profiles if user_profiles is not None else 0,
        )
        self.include_prices = include_prices
        self.include_categories = include_categories

        rows = [self.space.user(dataset.train.users)]
        cols = [self.space.item(dataset.train.items)]

        item_ids = np.arange(dataset.n_items)
        if include_categories:
            rows.append(self.space.item(item_ids))
            cols.append(self.space.category(dataset.item_categories))
        if include_prices:
            rows.append(self.space.item(item_ids))
            cols.append(self.space.price(dataset.item_price_levels))
        if user_profiles is not None:
            rows.append(self.space.user(np.arange(dataset.n_users)))
            cols.append(self.space.profile(user_profiles))

        self._rows = np.concatenate(rows)
        self._cols = np.concatenate(cols)
        # Constant-subgraph caches: the adjacency, its row-normalized forms
        # and the degree norms never change after construction, so they are
        # built at most once per (variant, dtype) instead of per forward.
        # Cached matrices are shared — callers must treat them as read-only.
        self._adjacency: Optional[sp.csr_matrix] = None
        self._normalized: dict = {}
        self._degrees: Optional[np.ndarray] = None

    @property
    def n_nodes(self) -> int:
        return self.space.total

    @property
    def n_edges(self) -> int:
        """Undirected edge count (before self-loops, deduplicated)."""
        return int(self.adjacency().nnz // 2)

    def adjacency(self) -> sp.csr_matrix:
        """Symmetric binary adjacency A (no self-loops, duplicates collapsed)."""
        if self._adjacency is None:
            n = self.n_nodes
            data = np.ones(len(self._rows))
            upper = sp.coo_matrix((data, (self._rows, self._cols)), shape=(n, n))
            matrix = upper + upper.T
            matrix = matrix.tocsr()
            matrix.data[:] = 1.0
            self._adjacency = matrix
        return self._adjacency

    def normalized_adjacency(self, self_loops: bool = True, dtype=None) -> sp.csr_matrix:
        """The paper's Eq. 5: ``Â = f(A + I)`` where f row-averages.

        With ``self_loops=True`` (the paper's choice, following SGC [26])
        every node has at least its own loop so no division by zero occurs.
        ``self_loops=False`` exists for the design ablation — isolated nodes
        then keep an all-zero row.

        ``dtype`` casts the CSR values (e.g. ``float32`` for a float32
        encoder so the propagation does not silently promote); results are
        cached per ``(self_loops, dtype)``.
        """
        key = (bool(self_loops), np.dtype(dtype or np.float64).str, False)
        if key not in self._normalized:
            matrix = self.adjacency()
            if self_loops:
                matrix = (matrix + sp.identity(self.n_nodes, format="csr")).tocsr()
            row_sums = np.asarray(matrix.sum(axis=1)).ravel()
            safe = np.where(row_sums > 0, row_sums, 1.0)
            inv = sp.diags(1.0 / safe)
            normalized = (inv @ matrix).tocsr()
            if dtype is not None:
                normalized = normalized.astype(np.dtype(dtype))
            self._normalized[key] = normalized
        return self._normalized[key]

    def normalized_adjacency_transpose(self, self_loops: bool = True, dtype=None) -> sp.csr_matrix:
        """CSR transpose of :meth:`normalized_adjacency`, cached alongside it.

        The backward pass of every propagation multiplies by ``Â.T``;
        building that transpose once here (instead of per backward call)
        is one of the constant-subgraph caches of the compute refactor.
        """
        key = (bool(self_loops), np.dtype(dtype or np.float64).str, True)
        if key not in self._normalized:
            self._normalized[key] = (
                self.normalized_adjacency(self_loops=self_loops, dtype=dtype).T.tocsr()
            )
        return self._normalized[key]

    def degrees(self) -> np.ndarray:
        """Node degrees including the self-loop (|N_i| in Eq. 1-2)."""
        if self._degrees is None:
            matrix = self.adjacency() + sp.identity(self.n_nodes, format="csr")
            self._degrees = np.asarray(matrix.sum(axis=1)).ravel()
        return self._degrees

    def to_networkx(self) -> nx.Graph:
        """Export to networkx with a ``node_type`` attribute, for inspection."""
        graph = nx.Graph()
        for node in range(self.n_nodes):
            graph.add_node(node, node_type=self.space.node_type(node))
        adjacency = self.adjacency().tocoo()
        for row, col in zip(adjacency.row, adjacency.col):
            if row < col:
                graph.add_edge(int(row), int(col))
        return graph
