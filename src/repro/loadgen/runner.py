"""Load runners: drive a workload through a gateway, measure what matters.

Two disciplines (see the package docstring for when each is the right
tool), one report.  Client-side end-to-end latency is measured around the
``submit → result`` pair in the closed loop; the serving-side view —
queue wait plus batch compute, the number the SLO is written against —
always comes from the service's own
:class:`~repro.serving.stats.ServingStats`, so the two can be compared
directly in one :class:`LoadReport`.

Shed requests (``Overloaded`` / ``RateLimited`` / ``GatewayClosed``) are
*expected outcomes* under overload, not errors: the runners count them by
reason and keep going, which is what lets an open-loop burst run
demonstrate that queue depth stays bounded while the overflow is
accounted for in ``gateway_shed_total``.

Under chaos (a :class:`~repro.faults.FaultPlan` installed in the stack)
two more outcome classes appear and the runners account for both:
degraded answers (:class:`~repro.serving.service.DegradedResponse`,
counted in ``n_degraded``) and typed post-admission failures
(``DeadlineExceeded`` / ``FlusherCrashed`` / ``BackendError`` /
``WorkerCrashed`` …, counted by class name in ``n_failed``).  A stored
error must never kill a worker thread — every admitted request resolves
to exactly one of ok / degraded / timeout / failed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..serving.gateway import (
    GatewayClosed,
    GatewayError,
    Overloaded,
    RateLimited,
    ServingGateway,
)
from ..serving.service import DegradedResponse, ResultTimeout
from .workload import ArrivalSchedule, LoadRequest, arrival_times

#: exception class → shed-reason key (mirrors gateway_shed_total labels)
_SHED_REASON = {
    Overloaded: "queue_full",
    RateLimited: "rate_limited",
    GatewayClosed: "closed",
}


def _await_outcome(
    pending,
    timeout_s: float,
    latencies: List[float],
    failed: Dict[str, int],
    began: Optional[float] = None,
) -> tuple:
    """Resolve one admitted request into (ok_delta, degraded_delta, timeout_delta).

    Failures land in ``failed`` keyed by exception class name; nothing
    propagates, so runner threads survive any stored backend error.
    """
    try:
        answer = pending.result(timeout=timeout_s)
    except ResultTimeout:
        return 0, 0, 1
    except Exception as exc:  # typed GatewayError or a raw backend error
        name = type(exc).__name__ if isinstance(exc, GatewayError) else "other"
        failed[name] = failed.get(name, 0) + 1
        return 0, 0, 0
    if began is not None:
        latencies.append(time.perf_counter() - began)
    if isinstance(answer, DegradedResponse):
        return 0, 1, 0
    return 1, 0, 0


@dataclass
class LoadReport:
    """What one load run produced, client view and serving view side by side.

    ``qps`` counts *completed* requests over wall time (the sustained
    number a capacity plan uses); ``offered_qps`` counts submit attempts,
    so ``offered_qps - qps`` under an open-loop burst is the shed rate.
    ``p50_ms``/``p99_ms`` are the serving-side end-to-end percentiles;
    ``client_p50_ms``/``client_p99_ms`` wrap the full submit→result round
    trip (closed loop only; 0.0 when not measured).
    """

    mode: str
    n_requests: int
    n_ok: int
    n_timeout: int
    duration_s: float
    offered_qps: float
    qps: float
    p50_ms: float
    p99_ms: float
    client_p50_ms: float
    client_p99_ms: float
    max_queue_depth: int
    n_shed: Dict[str, int] = field(default_factory=dict)
    serving: Dict[str, float] = field(default_factory=dict)
    #: admitted requests answered by the degradation ladder (chaos runs)
    n_degraded: int = 0
    #: admitted requests that resolved to an error, keyed by exception class
    n_failed: Dict[str, int] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.n_shed.values())

    @property
    def failed_total(self) -> int:
        return sum(self.n_failed.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_degraded": self.n_degraded,
            "n_shed": dict(self.n_shed),
            "shed_total": self.shed_total,
            "n_failed": dict(self.n_failed),
            "failed_total": self.failed_total,
            "n_timeout": self.n_timeout,
            "duration_s": self.duration_s,
            "offered_qps": self.offered_qps,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "client_p50_ms": self.client_p50_ms,
            "client_p99_ms": self.client_p99_ms,
            "max_queue_depth": self.max_queue_depth,
            "serving": dict(self.serving),
        }


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q)) * 1e3


def _finish_report(
    mode: str,
    gateway: ServingGateway,
    n_requests: int,
    n_ok: int,
    n_shed: Dict[str, int],
    n_timeout: int,
    duration: float,
    offered: int,
    latencies: Sequence[float],
    max_depth: int,
    n_degraded: int = 0,
    n_failed: Optional[Dict[str, int]] = None,
) -> LoadReport:
    serving = gateway.service.stats.snapshot()
    duration = max(duration, 1e-9)
    return LoadReport(
        mode=mode,
        n_requests=n_requests,
        n_ok=n_ok,
        n_shed=dict(n_shed),
        n_timeout=n_timeout,
        duration_s=duration,
        offered_qps=offered / duration,
        qps=n_ok / duration,
        p50_ms=serving.get("latency_p50_ms", 0.0),
        p99_ms=serving.get("latency_p99_ms", 0.0),
        client_p50_ms=_percentile_ms(latencies, 50),
        client_p99_ms=_percentile_ms(latencies, 99),
        max_queue_depth=max_depth,
        serving=serving,
        n_degraded=n_degraded,
        n_failed=dict(n_failed or {}),
    )


def run_closed_loop(
    gateway: ServingGateway,
    requests: Sequence[LoadRequest],
    threads: int = 8,
    result_timeout_s: float = 30.0,
) -> LoadReport:
    """N threads, each waiting for its answer before asking again.

    Requests are dealt round-robin so every thread sees the same zipfian
    mix.  The concurrency level IS the offered load: with all threads
    blocked in ``result()``, flushes come from the gateway's deadline
    trigger, so this measures the dual-trigger pipeline the way a fleet of
    synchronous API clients would exercise it.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    shards: List[List[LoadRequest]] = [list(requests[i::threads]) for i in range(threads)]
    results: List[tuple] = []
    results_lock = threading.Lock()

    def worker(shard: List[LoadRequest]) -> None:
        latencies: List[float] = []
        shed: Dict[str, int] = {}
        failed: Dict[str, int] = {}
        ok = degraded = timeouts = 0
        max_depth = 0
        for request in shard:
            began = time.perf_counter()
            try:
                pending = gateway.submit(
                    request.user,
                    k=request.k,
                    filters=request.filters,
                    price_profile=request.price_profile,
                    tenant=request.tenant,
                )
            except GatewayError as exc:
                reason = _SHED_REASON.get(type(exc), "other")
                shed[reason] = shed.get(reason, 0) + 1
                continue
            max_depth = max(max_depth, gateway.queue_depth)
            d_ok, d_deg, d_to = _await_outcome(
                pending, result_timeout_s, latencies, failed, began
            )
            ok += d_ok
            degraded += d_deg
            timeouts += d_to
        with results_lock:
            results.append((latencies, shed, timeouts, max_depth, ok, degraded, failed))

    pool = [
        threading.Thread(target=worker, args=(shard,), name=f"repro-loadgen-{i}")
        for i, shard in enumerate(shards)
        if shard
    ]
    began = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    duration = time.perf_counter() - began

    latencies: List[float] = []
    shed: Dict[str, int] = {}
    failed: Dict[str, int] = {}
    ok = degraded = timeouts = 0
    max_depth = 0
    for thread_lat, thread_shed, thread_timeouts, thread_depth, thread_ok, thread_deg, thread_failed in results:
        latencies.extend(thread_lat)
        for reason, count in thread_shed.items():
            shed[reason] = shed.get(reason, 0) + count
        for name, count in thread_failed.items():
            failed[name] = failed.get(name, 0) + count
        timeouts += thread_timeouts
        max_depth = max(max_depth, thread_depth)
        ok += thread_ok
        degraded += thread_deg
    return _finish_report(
        "closed", gateway, len(requests), ok, shed, timeouts,
        duration, len(requests), latencies, max_depth,
        n_degraded=degraded, n_failed=failed,
    )


def run_open_loop(
    gateway: ServingGateway,
    requests: Sequence[LoadRequest],
    schedule: Optional[ArrivalSchedule] = None,
    result_timeout_s: float = 30.0,
) -> LoadReport:
    """Requests arrive on the schedule's clock whether or not the system
    keeps up — the discipline that actually tests backpressure.

    One dispatcher paces submissions against wall time (sleeping until
    each arrival offset) and never blocks on results; sheds are counted
    and skipped.  After the last arrival everything still in flight is
    drained and awaited, so ``qps``/percentiles cover every admitted
    request and the run can assert queue depth stayed bounded throughout.
    """
    schedule = schedule or ArrivalSchedule()
    offsets = arrival_times(schedule, len(requests))
    pending_list = []
    shed: Dict[str, int] = {}
    timeouts = 0
    max_depth = 0
    began = time.perf_counter()
    for request, offset in zip(requests, offsets):
        delay = began + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            pending = gateway.submit(
                request.user,
                k=request.k,
                filters=request.filters,
                price_profile=request.price_profile,
                tenant=request.tenant,
            )
        except GatewayError as exc:
            reason = _SHED_REASON.get(type(exc), "other")
            shed[reason] = shed.get(reason, 0) + 1
            continue
        pending_list.append(pending)
        max_depth = max(max_depth, gateway.queue_depth)
    gateway.drain()
    n_ok = degraded = 0
    failed: Dict[str, int] = {}
    for pending in pending_list:
        d_ok, d_deg, d_to = _await_outcome(pending, result_timeout_s, [], failed)
        n_ok += d_ok
        degraded += d_deg
        timeouts += d_to
    duration = time.perf_counter() - began
    return _finish_report(
        "open", gateway, len(requests), n_ok, shed, timeouts,
        duration, len(requests), (), max_depth,
        n_degraded=degraded, n_failed=failed,
    )
