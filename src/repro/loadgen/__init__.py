"""Deterministic traffic generation shaped like millions of users.

The serving gateway (:mod:`repro.serving.gateway`) only earns its keep
under realistic concurrent load, and realistic recommendation traffic has
a very particular shape: a zipfian head of hot users who dominate request
volume, a long tail, a steady trickle of cold users the index has never
seen, bursts, and a mix of request parameters.  This package generates
exactly that — deterministically, from a seed — and drives it through a
gateway in either of the two canonical load-testing disciplines:

* **Closed loop** (:func:`run_closed_loop`) — N worker threads, each
  submitting its next request the moment the previous one resolves.
  Measures sustainable throughput: the system is never overdriven, so QPS
  converges to capacity.

* **Open loop** (:func:`run_open_loop`) — requests arrive on a wall-clock
  schedule that does not care whether the system keeps up (the only
  discipline that exposes queueing collapse and coordinated omission).
  Arrival schedules: uniform rate, on/off bursts, or a sinusoidal
  diurnal-style wave.

Everything is plain data in, plain data out: :func:`build_workload` turns
a :class:`WorkloadConfig` into a list of :class:`LoadRequest`,
:func:`arrival_times` turns an :class:`ArrivalSchedule` into timestamps,
and the runners return a :class:`LoadReport` combining client-side
end-to-end percentiles with the service's own
:class:`~repro.serving.stats.ServingStats` view.  Used by
``benchmarks/bench_service_load.py`` (the CI load gate) and ``repro
serve --load-test``-style experiments; see docs/serving.md.

:func:`run_chaos` layers deterministic fault injection on top of the
closed-loop discipline and audits the end-of-run books — every admitted
request must resolve exactly once as ok / degraded / failed; see
docs/robustness.md.
"""

from .workload import (
    ArrivalSchedule,
    LoadRequest,
    WorkloadConfig,
    arrival_times,
    build_workload,
    zipf_users,
)
from .runner import LoadReport, run_closed_loop, run_open_loop
from .chaos import ChaosReport, run_chaos, verify_accounting

__all__ = [
    "ArrivalSchedule",
    "LoadRequest",
    "WorkloadConfig",
    "arrival_times",
    "build_workload",
    "zipf_users",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "ChaosReport",
    "run_chaos",
    "verify_accounting",
]
