"""Workload synthesis: who asks, what they ask for, and when.

Three independent axes, each deterministic under a seed:

* **Who** — warm users drawn zipfian (rank :math:`r` with probability
  :math:`\\propto r^{-s}`), so a small hot set dominates exactly like
  production recommendation traffic; a configurable fraction of requests
  come from *cold* user ids outside the index's id space, exercising the
  price-profile fallback path the same way the paper's cold-start split
  exercises evaluation.

* **What** — per-request ``k`` drawn from a weighted mix, per-request
  filters drawn from a weighted mix (default: none), and an optional
  shared price profile attached to cold requests to steer the fallback.

* **When** — :func:`arrival_times` integrates an arrival-rate function
  :math:`\\lambda(t)` into a deterministic timestamp sequence
  (:math:`t_{i+1} = t_i + 1/\\lambda(t_i)`): uniform rate, on/off bursts,
  or a sinusoidal wave.  Deterministic (not Poisson) on purpose — load
  runs are comparable across commits, which is what a CI gate needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..serving.filters import Filter

#: cold ids start this far above the warm id space by default — far enough
#: that no plausible index growth turns a cold id warm between runs.
COLD_ID_OFFSET = 10_000_000


@dataclass(frozen=True)
class LoadRequest:
    """One request the generator will fire at the gateway."""

    user: int
    k: int
    cold: bool
    filters: Tuple[Filter, ...] = ()
    price_profile: Optional[np.ndarray] = None
    tenant: str = "default"


@dataclass
class WorkloadConfig:
    """Shape of the request population (not its timing — see ArrivalSchedule).

    ``zipf_s`` is the skew exponent: 0 = uniform, ~1 = classic web-traffic
    skew where the hottest user is requested orders of magnitude more often
    than the median.  ``cold_fraction`` of requests use ids outside
    ``[0, n_users)`` and therefore hit the fallback path.  ``k_mix`` and
    ``filter_mix`` are ``(choice, weight)`` pairs sampled per request.
    """

    n_requests: int = 1000
    n_users: int = 1000
    zipf_s: float = 1.1
    cold_fraction: float = 0.05
    cold_user_base: Optional[int] = None  # default: n_users + COLD_ID_OFFSET
    n_cold_users: int = 100
    k_mix: Sequence[Tuple[int, float]] = ((10, 1.0),)
    filter_mix: Sequence[Tuple[Tuple[Filter, ...], float]] = (((), 1.0),)
    cold_price_profile: Optional[np.ndarray] = None
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {self.n_users}")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if not 0.0 <= self.cold_fraction <= 1.0:
            raise ValueError(
                f"cold_fraction must be in [0, 1], got {self.cold_fraction}"
            )
        if self.n_cold_users < 1:
            raise ValueError(f"n_cold_users must be >= 1, got {self.n_cold_users}")
        if not self.k_mix:
            raise ValueError("k_mix cannot be empty")
        if not self.filter_mix:
            raise ValueError("filter_mix cannot be empty")


def zipf_users(
    n_requests: int, n_users: int, s: float, rng: np.random.Generator
) -> np.ndarray:
    """Zipfian user draw by inverse-CDF over the finite rank distribution.

    ``numpy``'s ``rng.zipf`` samples the unbounded Zipf law and needs
    ``s > 1``; real user populations are finite and traffic skews are often
    quoted with ``s <= 1``, so we build the exact CDF over ``n_users``
    ranks instead.  Rank 0 is the hottest user; because ranks map to user
    ids directly the hot set is stable across runs, which makes cache-hit
    behaviour reproducible too.
    """
    ranks = np.arange(1, n_users + 1, dtype=np.float64)
    weights = ranks ** -float(s)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(n_requests)
    return np.searchsorted(cdf, draws, side="left").astype(np.int64)


def _weighted_choice(rng: np.random.Generator, mix: Sequence[Tuple[object, float]], n: int) -> np.ndarray:
    weights = np.asarray([w for _, w in mix], dtype=np.float64)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative and sum > 0")
    return rng.choice(len(mix), size=n, p=weights / weights.sum())


def build_workload(config: WorkloadConfig, seed: int = 0) -> List[LoadRequest]:
    """Materialize the full request list (same seed → identical list)."""
    rng = np.random.default_rng(seed)
    users = zipf_users(config.n_requests, config.n_users, config.zipf_s, rng)
    cold = rng.random(config.n_requests) < config.cold_fraction
    cold_base = (
        config.cold_user_base
        if config.cold_user_base is not None
        else config.n_users + COLD_ID_OFFSET
    )
    cold_ids = cold_base + rng.integers(0, config.n_cold_users, config.n_requests)
    k_idx = _weighted_choice(rng, config.k_mix, config.n_requests)
    f_idx = _weighted_choice(rng, config.filter_mix, config.n_requests)

    requests: List[LoadRequest] = []
    for i in range(config.n_requests):
        is_cold = bool(cold[i])
        requests.append(
            LoadRequest(
                user=int(cold_ids[i]) if is_cold else int(users[i]),
                k=int(config.k_mix[k_idx[i]][0]),
                cold=is_cold,
                filters=tuple(config.filter_mix[f_idx[i]][0]),
                price_profile=config.cold_price_profile if is_cold else None,
                tenant=config.tenant,
            )
        )
    return requests


@dataclass
class ArrivalSchedule:
    """When requests arrive (open loop only; closed loop ignores timing).

    * ``uniform`` — constant ``rate`` req/s.
    * ``onoff``   — ``rate`` req/s for ``on_s`` seconds, silence for
      ``off_s``, repeat: the classic bursty on/off source.
    * ``sine``    — rate oscillates ``rate * (1 ± amplitude)`` with period
      ``period_s``: a compressed diurnal wave.
    """

    mode: str = "uniform"
    rate: float = 1000.0
    on_s: float = 0.05
    off_s: float = 0.05
    period_s: float = 1.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.mode not in ("uniform", "onoff", "sine"):
            raise ValueError(f"unknown arrival mode {self.mode!r}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.mode == "onoff" and (self.on_s <= 0 or self.off_s < 0):
            raise ValueError("onoff needs on_s > 0 and off_s >= 0")
        if self.mode == "sine":
            if self.period_s <= 0:
                raise ValueError(f"period_s must be > 0, got {self.period_s}")
            if not 0.0 <= self.amplitude < 1.0:
                raise ValueError(
                    f"amplitude must be in [0, 1), got {self.amplitude}"
                )

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate λ(t) in requests/second."""
        if self.mode == "uniform":
            return self.rate
        if self.mode == "onoff":
            phase = t % (self.on_s + self.off_s)
            return self.rate if phase < self.on_s else 0.0
        return self.rate * (1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period_s))


def arrival_times(schedule: ArrivalSchedule, n_requests: int) -> np.ndarray:
    """Deterministic arrival offsets (seconds from start) for ``n_requests``.

    Integrates λ(t) step by step: each gap is ``1 / λ(t)`` at the current
    instant, and during an off window the next arrival snaps to the start
    of the next on window.  No randomness — the same schedule always
    produces the same burst pattern, so open-loop runs are replayable.
    """
    times = np.empty(n_requests, dtype=np.float64)
    t = 0.0
    for i in range(n_requests):
        rate = schedule.rate_at(t)
        if rate <= 0.0:  # inside an off window: jump to the next on window
            cycle = schedule.on_s + schedule.off_s
            t = (np.floor(t / cycle) + 1.0) * cycle
            rate = schedule.rate_at(t)
        times[i] = t
        t += 1.0 / rate
    return times
