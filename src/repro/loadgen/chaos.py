"""Chaos runs: closed-loop load under a deterministic fault plan, then audit.

A chaos run is an ordinary :func:`~repro.loadgen.runner.run_closed_loop`
pass against a gateway whose stack has a :class:`~repro.faults.FaultPlan`
installed — workers crash, scorers throw, the ANN index goes dark, the
flusher dies mid-batch — followed by an *accounting audit*: because every
fault is injected deterministically, the run can assert exactly where
every request went.  The invariant a fault-tolerant gateway must hold:

    admitted == ok + degraded + failed        (server view, exactly once)

and on the client side every admitted request resolves to exactly one of
ok / degraded / timeout / typed failure — no hangs, no silent drops.
:func:`verify_accounting` checks both views against the live metric
registry (the same counters ``/metrics`` exports), so a passing chaos run
certifies the observability story as well as the resilience one.

The audit assumes a *fresh* gateway/service pair (counters start at
zero); reusing a gateway across runs double-counts and fails the audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import FaultPlan
from ..serving.gateway import SHED_REASONS, ServingGateway
from ..serving.stats import OUTCOMES
from .runner import LoadReport, run_closed_loop
from .workload import LoadRequest


@dataclass
class ChaosReport:
    """One chaos run: the load report, what the plan fired, and the audit."""

    load: LoadReport
    #: per-point ``{"occurrences": n, "fires": m}`` from FaultPlan.snapshot()
    fault_fires: Dict[str, Dict[str, int]] = field(default_factory=dict)
    accounting: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "load": self.load.to_dict(),
            "fault_fires": dict(self.fault_fires),
            "accounting": dict(self.accounting),
            "violations": list(self.violations),
            "ok": self.ok,
        }


def verify_accounting(
    gateway: ServingGateway,
    report: Optional[LoadReport] = None,
) -> Tuple[Dict[str, float], List[str]]:
    """Audit the gateway's books against the serving outcome counters.

    Returns ``(accounting, violations)``; an empty violations list means
    every admitted request was resolved exactly once and the client-side
    tallies (when a report is supplied) agree with the server's counters.
    """
    stats = gateway.service.stats
    snap = gateway.snapshot()
    admitted = snap["admitted"]
    accounting: Dict[str, float] = {"admitted": admitted}
    for outcome in OUTCOMES:
        accounting[outcome] = float(stats.outcome_count(outcome))
    for reason in SHED_REASONS:
        accounting[f"shed_{reason}"] = snap[f"shed_{reason}"]
    accounting["retries"] = float(stats.retries)
    accounting["deadline_exceeded"] = float(stats.deadline_exceeded)
    accounting["fallbacks"] = float(stats.fallback_count())
    accounting["flusher_restarts"] = snap["flusher_restarts"]

    violations: List[str] = []
    resolved = sum(accounting[outcome] for outcome in OUTCOMES)
    if resolved != admitted:
        violations.append(
            f"server books do not balance: admitted={admitted:.0f} but "
            f"ok+degraded+failed={resolved:.0f}"
        )
    if accounting["degraded"] > accounting["fallbacks"]:
        violations.append(
            f"{accounting['degraded']:.0f} degraded outcomes but only "
            f"{accounting['fallbacks']:.0f} fallback stages recorded"
        )
    if report is not None:
        client_resolved = (
            report.n_ok + report.n_degraded + report.failed_total + report.n_timeout
        )
        if client_resolved != admitted:
            violations.append(
                "client view does not balance: "
                f"ok={report.n_ok} degraded={report.n_degraded} "
                f"failed={report.failed_total} timeout={report.n_timeout} "
                f"!= admitted={admitted:.0f}"
            )
        shed_counters = sum(accounting[f"shed_{reason}"] for reason in SHED_REASONS)
        if report.shed_total != shed_counters:
            violations.append(
                f"runner counted {report.shed_total} sheds but "
                f"gateway_shed_total says {shed_counters:.0f}"
            )
        if report.n_requests != admitted + report.shed_total:
            violations.append(
                f"{report.n_requests} requests offered but "
                f"admitted+shed={admitted + report.shed_total:.0f}"
            )
    return accounting, violations


def run_chaos(
    gateway: ServingGateway,
    requests: Sequence[LoadRequest],
    plan: Optional[FaultPlan] = None,
    threads: int = 8,
    result_timeout_s: float = 30.0,
) -> ChaosReport:
    """Drive a closed-loop run under fault injection and audit the books.

    ``plan`` defaults to the plan already installed in the gateway; pass
    it explicitly only to snapshot a plan shared more widely (e.g. one
    also wired into a process pool).  The audit runs after a full drain,
    so in-flight work cannot smear the counters.
    """
    plan = plan if plan is not None else gateway.fault_plan
    report = run_closed_loop(
        gateway, requests, threads=threads, result_timeout_s=result_timeout_s
    )
    gateway.drain()
    accounting, violations = verify_accounting(gateway, report)
    fires = plan.snapshot() if plan is not None else {}
    return ChaosReport(
        load=report,
        fault_fires=fires,
        accounting=accounting,
        violations=violations,
    )
