"""Request tracing: context-manager spans with parent/child linkage.

A :class:`Tracer` records :class:`Span` intervals — service admission,
cache lookup, batcher flush, retrieval stages, trainer epochs, evaluation
chunks — and exports them as Chrome-trace-event JSON (loadable in
Perfetto / ``chrome://tracing``) or JSONL.

Linkage: ``tracer.span(...)`` nests via a per-thread stack, so a span
opened inside another becomes its child automatically.  Spans that cross
call boundaries (a serving request that is admitted in ``submit`` and
resolved in a later ``flush``) use the manual :meth:`Tracer.begin` /
:meth:`Span.finish` pair, which does *not* touch the nesting stack.

Cross-process spans: worker processes record into their own tracer and
ship ``tracer.records()`` (plain dicts) back over the result path; the
parent folds them in with :meth:`Tracer.extend`.  Records carry ``pid`` /
``tid``, so merged timelines separate naturally per worker track.  Span
timestamps come from ``time.perf_counter`` — on Linux that is
``CLOCK_MONOTONIC``, which ``fork`` children share, so parent and worker
spans are directly comparable; on spawn-style platforms tracks may carry a
constant offset (each track is still internally consistent).

The clock is injectable for deterministic tests, and a disabled tracer
degrades to no-ops so instrumented code never needs ``if tracer:`` guards
once it holds one.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional

#: record keys every span dict carries (the JSONL / wire schema)
SPAN_FIELDS = (
    "name", "cat", "trace_id", "span_id", "parent_id",
    "start", "end", "pid", "tid", "attrs",
)


class Span:
    """One timed interval; ``attrs`` may be extended until :meth:`finish`."""

    __slots__ = (
        "name", "cat", "trace_id", "span_id", "parent_id",
        "start", "end", "pid", "tid", "attrs", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        trace_id: Optional[str],
        span_id: str,
        parent_id: Optional[str],
        start: float,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.pid = tracer._pid
        self.tid = threading.get_ident()
        self.attrs: Dict = {}

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def finish(self, **attrs) -> None:
        """Close the span (idempotent) and record it with its tracer.

        This is the serving hot path (two spans per request): the record
        dict is built inline and appended without a lock — ``list.append``
        is atomic under the GIL — and ``attrs`` is recorded by reference,
        which is safe because attrs mutate only *until* finish.
        """
        if self.end is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        tracer = self._tracer
        self.end = end = tracer.clock()
        tracer._records.append(
            {
                "name": self.name,
                "cat": self.cat,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start": self.start,
                "end": end,
                "pid": self.pid,
                "tid": self.tid,
                "attrs": self.attrs,
            }
        )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """What a disabled tracer hands out: attribute writes vanish."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> None:
        pass

    def finish(self, **attrs) -> None:
        pass

    span_id = None


_NULL_SPAN = _NullSpan()


class _ScopedSpan:
    """Context manager for :meth:`Tracer.span`: stack entry + auto-finish."""

    __slots__ = ("span", "_stack")

    def __init__(self, span: Span, stack: List[str]) -> None:
        self.span = span
        self._stack = stack

    def __enter__(self) -> Span:
        self._stack.append(self.span.span_id)
        return self.span

    def __exit__(self, *exc_info) -> None:
        self._stack.pop()
        self.span.finish()


class _NullContext:
    """Disabled-tracer context: hands out the null span, records nothing."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects spans; thread-safe; exports Chrome trace JSON and JSONL."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        process_name: Optional[str] = None,
    ) -> None:
        self.enabled = enabled
        self.clock = clock or time.perf_counter
        self.process_name = process_name
        self._lock = threading.Lock()
        self._records: List[Dict] = []
        self._ids = itertools.count(1)
        self._stack = threading.local()
        # Cached per tracer: a worker process creates its own tracer after
        # fork (see repro.runtime.engine), so the pid never goes stale.
        self._pid = os.getpid()
        self._id_prefix = f"{self._pid}-"

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return self._id_prefix + str(next(self._ids))

    def _stack_list(self) -> List[str]:
        stack = getattr(self._stack, "items", None)
        if stack is None:
            stack = self._stack.items = []
        return stack

    @property
    def current_span_id(self) -> Optional[str]:
        """Innermost open ``span()`` on this thread (None at top level)."""
        stack = self._stack_list()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        cat: str = "",
        attrs: Optional[Dict] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ):
        """Open a span that will be closed later with ``span.finish()``.

        Does not join the per-thread nesting stack — this is for intervals
        whose start and end live in different calls (an in-flight request).
        ``parent_id`` defaults to the thread's current ``span()`` context.
        """
        if not self.enabled:
            return _NULL_SPAN
        if parent_id is None:
            stack = getattr(self._stack, "items", None)
            if stack:
                parent_id = stack[-1]
        span = Span(self, name, cat, trace_id, self._next_id(), parent_id, self.clock())
        if attrs:
            span.attrs.update(attrs)
        return span

    def span(
        self,
        name: str,
        cat: str = "",
        attrs: Optional[Dict] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> "_ScopedSpan":
        """Scoped span; children opened inside nest under it automatically.

        Returns a slim context manager rather than a generator — the
        ``@contextmanager`` machinery costs about as much as the span
        bookkeeping itself on hot paths.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        span = self.begin(name, cat=cat, attrs=attrs, trace_id=trace_id, parent_id=parent_id)
        return _ScopedSpan(span, self._stack_list())

    # ------------------------------------------------------------------
    def records(self) -> List[Dict]:
        """Finished spans as plain dicts (the cross-process wire format)."""
        with self._lock:
            return [dict(record) for record in self._records]

    def extend(self, records: Iterable[Dict]) -> int:
        """Fold foreign span records in (e.g. shipped from worker processes)."""
        added = 0
        with self._lock:
            for record in records:
                missing = [field for field in SPAN_FIELDS if field not in record]
                if missing:
                    raise ValueError(f"span record is missing fields {missing}")
                self._records.append(dict(record))
                added += 1
        return added

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> Dict:
        """The Chrome trace-event JSON object (Perfetto-loadable).

        Spans become complete (``"ph": "X"``) events with microsecond
        ``ts`` / ``dur``; ``span_id`` / ``parent_id`` / ``trace_id`` ride
        in ``args`` so the tree is recoverable from the file alone.
        """
        events: List[Dict] = []
        names: Dict[int, str] = {}
        for record in self.records():
            if record["end"] is None:
                continue
            events.append(
                {
                    "name": record["name"],
                    "cat": record["cat"] or "repro",
                    "ph": "X",
                    "ts": record["start"] * 1e6,
                    "dur": (record["end"] - record["start"]) * 1e6,
                    "pid": record["pid"],
                    "tid": record["tid"],
                    "args": {
                        **record["attrs"],
                        "span_id": record["span_id"],
                        "parent_id": record["parent_id"],
                        "trace_id": record["trace_id"],
                    },
                }
            )
            names.setdefault(record["pid"], self.process_name or "repro")
        for pid, name in names.items():
            label = name if pid == os.getpid() else f"{name} worker"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)
            handle.write("\n")
        return path

    def write_jsonl(self, path: str) -> str:
        """One span record per line (grep-able; streams without parsing)."""
        with open(path, "w") as handle:
            for record in self.records():
                handle.write(json.dumps(record) + "\n")
        return path

    def write(self, path: str) -> str:
        """Chrome trace JSON, or JSONL when ``path`` ends in ``.jsonl``."""
        if path.endswith(".jsonl"):
            return self.write_jsonl(path)
        return self.write_chrome_trace(path)


def maybe_span(tracer: Optional[Tracer], name: str, **kwargs):
    """``tracer.span(...)`` or a no-op context when ``tracer`` is None.

    Lets call sites keep observability optional with zero overhead on the
    ``None`` path — the pattern every instrumented hot loop here uses.
    """
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, **kwargs)
