"""A stdlib HTTP endpoint surfacing the metrics registry live.

:class:`MetricsServer` runs a ``ThreadingHTTPServer`` on a daemon thread
and serves three routes:

* ``GET /metrics``  — Prometheus text exposition of the registry
* ``GET /stats``    — JSON: the ``stats_fn`` payload if one was given
  (e.g. ``ServingStats.extended_snapshot``), else the registry's
  :meth:`~repro.obs.metrics.MetricsRegistry.to_json`
* ``GET /healthz``  — liveness: ``{"status": "ok"}``

``update_fn`` (optional) runs before each scrape so point-in-time gauges
(queue depth, cache entries) can be refreshed lazily instead of on every
mutation.  ``port=0`` binds an ephemeral port; read :attr:`port` after
construction.  No third-party dependency — this is the whole serving
surface a Prometheus scraper or a load balancer's health check needs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from .metrics import MetricsRegistry

CONTENT_TYPE_EXPOSITION = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve ``/metrics``, ``/stats``, and ``/healthz`` for one registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        stats_fn: Optional[Callable[[], Dict]] = None,
        update_fn: Optional[Callable[[], None]] = None,
    ) -> None:
        self.registry = registry
        self.stats_fn = stats_fn
        self.update_fn = update_fn
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # no stderr chatter per scrape
                pass

            def _send(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        if server.update_fn is not None:
                            server.update_fn()
                        body = server.registry.to_prometheus().encode()
                        self._send(200, CONTENT_TYPE_EXPOSITION, body)
                    elif path == "/stats":
                        if server.update_fn is not None:
                            server.update_fn()
                        payload = (
                            server.stats_fn()
                            if server.stats_fn is not None
                            else server.registry.to_json()
                        )
                        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
                        self._send(200, "application/json", body)
                    elif path == "/healthz":
                        self._send(200, "application/json", b'{"status": "ok"}\n')
                    else:
                        self._send(404, "text/plain; charset=utf-8", b"not found\n")
                except BrokenPipeError:  # scraper went away mid-response
                    pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the real one when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-metrics", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
