"""Thread-safe metrics primitives: Counter / Gauge / Histogram with labels.

The registry is the one place every subsystem reports into — the serving
stack, the batch-inference runtime, the trainer's profiler — and the one
place exporters read from.  Three design rules make that work:

* **Thread safety.**  Every mutation happens under the registry lock, so a
  metric can be shared by the thread-mode worker pool, the serving queue,
  and a scrape thread without torn read-modify-writes.

* **Mergeability.**  :class:`Histogram` uses *fixed log-spaced buckets*
  (the same layout in every process by construction), so two histograms —
  one per worker process, say — merge by adding bucket counts, and the
  merged percentiles are exactly what one process observing all the samples
  would report.  This is the property the sliding-window
  :class:`~repro.serving.stats.LatencyRecorder` cannot offer, and why the
  cross-process aggregation in :mod:`repro.runtime` ships registry
  snapshots (:meth:`MetricsRegistry.to_json`) back over the result path
  and folds them in with :meth:`MetricsRegistry.merge`.

* **Plain-data export.**  :meth:`MetricsRegistry.to_json` is a JSON-safe
  dict that round-trips through ``merge``; :meth:`to_prometheus` renders
  the text exposition format (version 0.0.4) that ``/metrics`` serves and
  :func:`parse_prometheus` reads back (used by the CI scrape gate).

No clock is consulted unless a timer context manager is used, and that
clock is injectable (``MetricsRegistry(clock=...)``) for deterministic
tests.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(
    start: float = 1e-6, stop: float = 1e2, per_decade: int = 4
) -> Tuple[float, ...]:
    """Fixed log-spaced bucket upper bounds covering ``[start, stop]``.

    The default spans 1 µs .. 100 s at four buckets per decade (33 bounds
    plus the implicit +Inf overflow) — wide enough for every latency this
    codebase measures, and *identical in every process*, which is what
    makes histograms built on it mergeable by bucket-count addition.
    """
    if start <= 0 or stop <= start:
        raise ValueError(f"need 0 < start < stop, got ({start}, {stop})")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    decades = math.log10(stop / start)
    n = int(round(decades * per_decade))
    # Powers are computed from integer exponents so every process derives
    # bit-identical bounds (a cumulative multiply would drift).
    return tuple(start * 10.0 ** (i / per_decade) for i in range(n + 1))


DEFAULT_BUCKETS = log_buckets()


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(label_names: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(label_names)
    for name in names:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names in {names}")
    return names


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class _Series:
    """One (metric, label-values) time series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _HistogramSeries:
    """Bucket counts + sum/count/min/max for one labelled histogram series."""

    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf


class Metric:
    """Base class: a named family of series, one per label-value tuple.

    ``labels(**values)`` returns a bound handle (:class:`BoundCounter` and
    friends) whose mutators take the registry lock.  Unlabelled metrics
    expose the mutators directly on the metric for convenience.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        lock: threading.RLock,
        clock: Callable[[], float],
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = _check_labels(label_names)
        self._lock = lock
        self._clock = clock
        self._series: Dict[Tuple[str, ...], object] = {}

    # ------------------------------------------------------------------
    def _key(self, label_values: Dict[str, str]) -> Tuple[str, ...]:
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got "
                f"{tuple(sorted(label_values))}"
            )
        return tuple(str(label_values[name]) for name in self.label_names)

    def _new_series(self):
        return _Series()

    def _get_series(self, key: Tuple[str, ...]):
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._new_series()
        return series

    def _require_unlabelled(self) -> Tuple[str, ...]:
        if self.label_names:
            raise ValueError(
                f"{self.name} has labels {self.label_names}; use "
                f".labels(...) to pick a series"
            )
        return ()

    # ------------------------------------------------------------------
    def items(self) -> List[Tuple[Dict[str, str], object]]:
        """``(label-dict, series)`` pairs, insertion-ordered (snapshot)."""
        with self._lock:
            return [
                (dict(zip(self.label_names, key)), series)
                for key, series in self._series.items()
            ]

    def clear(self) -> None:
        """Drop every series (counts restart from zero)."""
        with self._lock:
            self._series.clear()


class Counter(Metric):
    """Monotonically increasing sum (requests served, seconds accumulated)."""

    kind = "counter"

    def labels(self, **label_values: str) -> "BoundCounter":
        return BoundCounter(self, self._key(label_values))

    def inc(self, amount: float = 1.0) -> None:
        self.labels_key(self._require_unlabelled(), amount)

    def labels_key(self, key: Tuple[str, ...], amount: float) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (amount={amount})")
        with self._lock:
            self._get_series(key).value += amount

    def value(self, **label_values: str) -> float:
        key = self._key(label_values) if label_values else self._require_unlabelled()
        with self._lock:
            series = self._series.get(key)
            return series.value if series is not None else 0.0

    def value_for(self, key: Tuple[str, ...]) -> float:
        with self._lock:
            series = self._series.get(key)
            return series.value if series is not None else 0.0


class BoundCounter:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Counter, key: Tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric.labels_key(self._key, amount)

    @property
    def value(self) -> float:
        return self._metric.value_for(self._key)


class Gauge(Metric):
    """A value that can go up and down (queue depth, cache entries)."""

    kind = "gauge"

    def labels(self, **label_values: str) -> "BoundGauge":
        return BoundGauge(self, self._key(label_values))

    def set(self, value: float) -> None:
        self.set_key(self._require_unlabelled(), value)

    def inc(self, amount: float = 1.0) -> None:
        self.add_key(self._require_unlabelled(), amount)

    def dec(self, amount: float = 1.0) -> None:
        self.add_key(self._require_unlabelled(), -amount)

    def set_key(self, key: Tuple[str, ...], value: float) -> None:
        with self._lock:
            self._get_series(key).value = float(value)

    def add_key(self, key: Tuple[str, ...], amount: float) -> None:
        with self._lock:
            self._get_series(key).value += amount

    def value(self, **label_values: str) -> float:
        key = self._key(label_values) if label_values else self._require_unlabelled()
        with self._lock:
            series = self._series.get(key)
            return series.value if series is not None else 0.0


class BoundGauge:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Gauge, key: Tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def set(self, value: float) -> None:
        self._metric.set_key(self._key, value)

    def inc(self, amount: float = 1.0) -> None:
        self._metric.add_key(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._metric.add_key(self._key, -amount)


class Histogram(Metric):
    """Distribution over fixed log-spaced buckets; percentiles are mergeable.

    ``observe(v)`` adds ``v`` to the bucket whose upper bound is the first
    ``>= v`` (values past the last bound land in the +Inf overflow bucket).
    Because the bucket layout is fixed at construction and shared by every
    process (:data:`DEFAULT_BUCKETS`), histograms merge by adding counts —
    the estimated percentiles of a merge are identical to those of one
    histogram that observed every sample.  ``percentile`` interpolates
    linearly inside the winning bucket and clamps to the observed
    ``[min, max]``, so its error is bounded by the bucket width (~78% at
    four buckets per decade), never by the sample count.
    """

    kind = "histogram"

    def __init__(self, *args, buckets: Optional[Sequence[float]] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing and non-empty")
        self.bounds = bounds

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(len(self.bounds) + 1)

    def labels(self, **label_values: str) -> "BoundHistogram":
        return BoundHistogram(self, self._key(label_values))

    def observe(self, value: float) -> None:
        self.observe_key(self._require_unlabelled(), value)

    def observe_key(self, key: Tuple[str, ...], value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            series = self._get_series(key)
            series.counts[index] += 1
            series.sum += value
            series.count += 1
            if value < series.min:
                series.min = value
            if value > series.max:
                series.max = value

    @contextmanager
    def time(self) -> Iterator[None]:
        """Scoped timer into the unlabelled series (registry clock)."""
        key = self._require_unlabelled()
        start = self._clock()
        try:
            yield
        finally:
            self.observe_key(key, self._clock() - start)

    # ------------------------------------------------------------------
    def _series_or_none(self, label_values: Dict[str, str]) -> Optional[_HistogramSeries]:
        key = self._key(label_values) if label_values else self._require_unlabelled()
        with self._lock:
            return self._series.get(key)

    def count(self, **label_values: str) -> int:
        series = self._series_or_none(label_values)
        return series.count if series is not None else 0

    def sum(self, **label_values: str) -> float:
        series = self._series_or_none(label_values)
        return series.sum if series is not None else 0.0

    def mean(self, **label_values: str) -> float:
        series = self._series_or_none(label_values)
        if series is None or series.count == 0:
            return 0.0
        return series.sum / series.count

    def percentile(self, q: float, **label_values: str) -> float:
        """Estimated q-th percentile from bucket counts (O(buckets)).

        Finds the bucket holding the target rank, interpolates linearly
        between its edges, and clamps to the observed min/max — so a
        single-sample histogram reports that sample exactly, and estimates
        never fall outside the observed range.
        """
        series = self._series_or_none(label_values)
        if series is None or series.count == 0:
            return 0.0
        with self._lock:
            counts = list(series.counts)
            total, lo_obs, hi_obs = series.count, series.min, series.max
        target = (q / 100.0) * total
        cumulative = 0
        for index, count in enumerate(counts):
            cumulative += count
            if cumulative >= target and count > 0:
                lower = self.bounds[index - 1] if index >= 1 else 0.0
                upper = self.bounds[index] if index < len(self.bounds) else hi_obs
                fraction = (target - (cumulative - count)) / count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, lo_obs), hi_obs)
        return hi_obs


class BoundHistogram:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Histogram, key: Tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        self._metric.observe_key(self._key, value)


class MetricsRegistry:
    """A named, ordered collection of metrics with exporters and merge.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for an
    existing name returns the same object (so independent subsystems can
    share a series), while re-registering under a different type, label
    set, or bucket layout is an error — silent divergence would corrupt
    merged data.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._lock = threading.RLock()
        self._metrics: "Dict[str, Metric]" = {}
        self.clock = clock or time.perf_counter

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"{name!r} is already registered as a {existing.kind}"
                    )
                if existing.label_names != tuple(labels):
                    raise ValueError(
                        f"{name!r} is registered with labels {existing.label_names}, "
                        f"not {tuple(labels)}"
                    )
                buckets = kwargs.get("buckets")
                if buckets is not None and tuple(float(b) for b in buckets) != existing.bounds:
                    raise ValueError(f"{name!r} is registered with different buckets")
                return existing
            metric = cls(name, help, tuple(labels), self._lock, self.clock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def clear(self) -> None:
        """Drop every metric (a fresh registry; exporters see nothing)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        """JSON-safe snapshot; the wire format :meth:`merge` accepts.

        Histogram series carry their raw (non-cumulative) bucket counts and
        bounds, so a snapshot is self-describing and two snapshots merge
        without reference to the registry that produced them.
        """
        out: Dict = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            series_out = []
            for labels, series in metric.items():
                if metric.kind == "histogram":
                    series_out.append(
                        {
                            "labels": labels,
                            "counts": list(series.counts),
                            "sum": series.sum,
                            "count": series.count,
                            "min": None if series.count == 0 else series.min,
                            "max": None if series.count == 0 else series.max,
                        }
                    )
                else:
                    series_out.append({"labels": labels, "value": series.value})
            entry: Dict = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
                "series": series_out,
            }
            if metric.kind == "histogram":
                entry["bounds"] = list(metric.bounds)
            out[metric.name] = entry
        return out

    def merge(self, snapshot: Dict) -> None:
        """Fold a :meth:`to_json` snapshot (e.g. from a worker process) in.

        Counters and histogram counts/sums add; gauges take the incoming
        value (last write wins — a point-in-time reading has no meaningful
        sum).  Merging is associative and commutative for counters and
        histograms, which is what makes sharded aggregation order-free.
        """
        for name, entry in snapshot.items():
            kind = entry["type"]
            labels = tuple(entry.get("labels") or ())
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""), labels)
                for series in entry["series"]:
                    key = metric._key(series["labels"]) if labels else ()
                    metric.labels_key(key, float(series["value"]))
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""), labels)
                for series in entry["series"]:
                    key = metric._key(series["labels"]) if labels else ()
                    metric.set_key(key, float(series["value"]))
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""), labels, buckets=entry.get("bounds")
                )
                if entry.get("bounds") is not None and tuple(entry["bounds"]) != metric.bounds:
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket layouts differ"
                    )
                for series in entry["series"]:
                    key = metric._key(series["labels"]) if labels else ()
                    with self._lock:
                        target = metric._get_series(key)
                        counts = series["counts"]
                        if len(counts) != len(target.counts):
                            raise ValueError(
                                f"cannot merge histogram {name!r}: bucket layouts differ"
                            )
                        for index, count in enumerate(counts):
                            target.counts[index] += count
                        target.sum += float(series["sum"])
                        target.count += int(series["count"])
                        if series.get("min") is not None:
                            target.min = min(target.min, float(series["min"]))
                        if series.get("max") is not None:
                            target.max = max(target.max, float(series["max"]))
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, series in metric.items():
                values = tuple(labels[name] for name in metric.label_names)
                if metric.kind == "histogram":
                    cumulative = 0
                    for index, bound in enumerate(metric.bounds):
                        cumulative += series.counts[index]
                        bucket_labels = _label_str(
                            metric.label_names + ("le",),
                            values + (_format_value(bound),),
                        )
                        lines.append(f"{metric.name}_bucket{bucket_labels} {cumulative}")
                    cumulative += series.counts[-1]
                    inf_labels = _label_str(
                        metric.label_names + ("le",), values + ("+Inf",)
                    )
                    lines.append(f"{metric.name}_bucket{inf_labels} {cumulative}")
                    plain = _label_str(metric.label_names, values)
                    lines.append(f"{metric.name}_sum{plain} {_format_value(series.sum)}")
                    lines.append(f"{metric.name}_count{plain} {series.count}")
                else:
                    plain = _label_str(metric.label_names, values)
                    lines.append(f"{metric.name}{plain} {_format_value(series.value)}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Exposition-format parsing (tests + the CI scrape gate)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(text: str) -> str:
    return text.replace(r"\"", '"').replace(r"\n", "\n").replace(r"\\", "\\")


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse text exposition into ``{(name, sorted-label-pairs): value}``.

    Strict enough to be a CI gate: a malformed sample line (not a comment,
    not blank, not ``name{labels} value``) raises ``ValueError`` instead of
    being skipped.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line_number, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line {line_number}: {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for pair in _LABEL_PAIR_RE.finditer(raw):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
            leftover = _LABEL_PAIR_RE.sub("", raw).replace(",", "").strip()
            if leftover:
                raise ValueError(f"unparseable labels on line {line_number}: {raw!r}")
        raw_value = match.group("value")
        value = {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}.get(raw_value)
        if value is None:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"unparseable sample value on line {line_number}: {raw_value!r}"
                )
        samples[(match.group("name"), tuple(sorted(labels.items())))] = value
    return samples
