"""repro.obs — the unified observability layer.

Three pieces, one spine:

* :mod:`repro.obs.metrics` — thread-safe Counter / Gauge / Histogram with
  labels in a :class:`MetricsRegistry`; histograms use fixed log-spaced
  buckets so percentiles *merge* across processes; exporters for the
  Prometheus text exposition and JSON.
* :mod:`repro.obs.trace` — :class:`Tracer` context-manager spans with
  parent/child linkage, exported as Chrome-trace-event JSON (Perfetto)
  or JSONL; span records ship across process boundaries as plain dicts.
* :mod:`repro.obs.server` — a stdlib HTTP :class:`MetricsServer` with
  ``/metrics``, ``/stats``, and ``/healthz`` (``repro serve
  --metrics-port``).

Everything downstream — :class:`~repro.serving.stats.ServingStats`, the
:class:`~repro.profiling.Profiler`, the batch runtime's cross-worker
aggregation, the CLI's ``--trace-out`` — is built on these primitives.
See ``docs/observability.md`` for the metric catalog and trace workflow.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    parse_prometheus,
)
from .server import MetricsServer
from .trace import Span, Tracer, maybe_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "Tracer",
    "DEFAULT_BUCKETS",
    "log_buckets",
    "maybe_span",
    "parse_prometheus",
]
