"""``python -m repro`` — the command-line face of the experiment API.

Subcommands:

* ``list``      — registered models and datasets
* ``train``     — run one experiment spec end to end, write an artifact dir
* ``evaluate``  — re-evaluate a saved artifact dir (``--workers``/``--shards``
  parallelize the pass; results are bit-identical to serial)
* ``export``    — (re)build the serving index from a saved checkpoint
  (``--format dir`` writes the mmap-able uncompressed layout)
* ``recommend`` — bulk top-K export for every warm user via the parallel
  batch-inference runtime
* ``serve``     — answer recommendation queries from an artifact dir
  (``--metrics-port`` exposes a live Prometheus ``/metrics`` endpoint;
  ``--hold`` keeps it up for scraping)
* ``compare``   — train several models on one dataset, print a table

``train`` / ``evaluate`` / ``recommend`` / ``serve`` accept ``--trace-out``
to record a Chrome-trace span timeline (see ``docs/observability.md``).

Every subcommand goes through :mod:`repro.experiments`; nothing here
touches model factories or training loops directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from .data.registry import available_datasets
from .experiments import PAPER_HPARAMS
from .experiments.artifacts import ANN_DIRNAME, ANN_FILENAME, INDEX_FILENAME, Experiment
from .experiments.registry import (
    available_models,
    model_display_name,
    model_info,
    resolve_model_name,
)
from .experiments.runner import run
from .experiments.spec import ExperimentSpec
from .profiling import Profiler
from .serving.export import ExportError


def _parse_value(text: str) -> Any:
    """Best-effort typed parse of a ``--hparam key=value`` value."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_hparams(pairs: Optional[Sequence[str]]) -> Dict[str, Any]:
    hparams: Dict[str, Any] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"--hparam expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        hparams[key.strip()] = _parse_value(value.strip())
    return hparams


def _parse_ks(text: str, flag: str = "--ks") -> tuple:
    try:
        return tuple(int(k) for k in text.split(","))
    except ValueError:
        raise SystemExit(f"{flag} expects comma-separated integers, got {text!r}")


def _print_metrics(metrics: Dict[str, float], indent: str = "  ") -> None:
    for name in sorted(metrics):
        print(f"{indent}{name}: {metrics[name]:.4f}")


def _make_tracer(args: argparse.Namespace, process_name: str):
    """A :class:`repro.obs.Tracer` when ``--trace-out`` was given, else None."""
    if getattr(args, "trace_out", None) is None:
        return None
    from .obs.trace import Tracer

    return Tracer(process_name=process_name)


def _write_trace(tracer, args: argparse.Namespace) -> None:
    if tracer is None:
        return
    path = tracer.write(args.trace_out)
    print(f"trace: {len(tracer)} spans -> {path}")


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write a span trace of this command: Chrome trace-event JSON "
        "(load in Perfetto / chrome://tracing), or JSONL when FILE ends in "
        ".jsonl (see docs/observability.md)",
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    print("datasets:")
    for name in available_datasets():
        print(f"  {name}")
    print("\nmodels:")
    width = max(len(name) for name in available_models())
    for name in available_models():
        info = model_info(name)
        aliases = ", ".join(a for a in info["aliases"] if a != info["display"])
        suffix = f"  (aliases: {aliases})" if aliases else ""
        print(f"  {name.ljust(width)}  {info['display']:<12} {info['description']}{suffix}")
    return 0


def _spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    if args.spec:
        # A spec file is the complete experiment; silently overriding parts
        # of it from flags would record the wrong experiment in spec.json.
        conflicting = [
            flag
            for flag, value in (
                ("--model", args.model),
                ("--dataset", args.dataset),
                ("--scale", args.scale),
                ("--seed", args.seed),
                ("--data-seed", args.data_seed),
                ("--epochs", args.epochs),
                ("--batch-size", args.batch_size),
                ("--lr", args.lr),
                ("--l2", args.l2),
                ("--lr-milestones", args.lr_milestones),
                ("--eval-every", args.eval_every),
                ("--ks", args.ks),
                ("--split", args.split),
                ("--hparam", args.hparam),
                ("--name", args.name),
                ("--precision", args.precision),
            )
            if value is not None
        ] + (["--no-export"] if args.no_export else [])
        if conflicting:
            raise SystemExit(
                f"--spec is a complete experiment; drop {', '.join(conflicting)} "
                "or edit the spec file instead"
            )
        return ExperimentSpec.load(args.spec)
    if not args.model or not args.dataset:
        raise SystemExit("train needs --model and --dataset (or --spec FILE)")
    train_kwargs: Dict[str, Any] = {"epochs": 40 if args.epochs is None else args.epochs}
    if args.batch_size is not None:
        train_kwargs["batch_size"] = args.batch_size
    if args.lr is not None:
        train_kwargs["learning_rate"] = args.lr
    if args.l2 is not None:
        train_kwargs["l2_weight"] = args.l2
    if args.lr_milestones is not None:
        train_kwargs["lr_milestones"] = _parse_ks(args.lr_milestones, "--lr-milestones")
    if args.eval_every is not None:
        train_kwargs["eval_every"] = args.eval_every
    train_kwargs["verbose"] = not args.quiet
    return ExperimentSpec.create(
        args.model,
        args.dataset,
        hparams=_parse_hparams(args.hparam),
        seed=0 if args.seed is None else args.seed,
        scale=1.0 if args.scale is None else args.scale,
        data_seed=0 if args.data_seed is None else args.data_seed,
        ks=_parse_ks(args.ks or "50,100"),
        split=args.split or "test",
        export=not args.no_export,
        name=args.name,
        precision=args.precision or "float64",
        **train_kwargs,
    )


def cmd_train(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    artifacts_dir = args.out or os.path.join("runs", spec.name)
    tracer = _make_tracer(args, "repro-train")
    experiment = run(
        spec, artifacts_dir=artifacts_dir, verbose=not args.quiet,
        eval_workers=args.eval_workers, eval_shards=args.eval_shards,
        tracer=tracer,
    )
    result = experiment.train_result
    if result is not None and result.triples_per_sec:
        profile = result.profile
        phases = profile.get("phases", {})
        # Shares over pure-train time (summary()'s shares include validation,
        # which the quoted train_seconds window deliberately excludes).
        train_seconds = profile.get("train_seconds") or 0.0
        breakdown = " ".join(
            f"{name} {phases[name]['seconds'] / train_seconds:.0%}"
            for name in ("sampling", "forward", "backward", "step")
            if name in phases and train_seconds > 0
        )
        print(
            f"\ntraining throughput: {result.triples_per_sec:,.0f} triples/s "
            f"over {train_seconds:.2f}s ({breakdown})"
        )
    print(f"\n{spec.name} metrics ({spec.eval.split}):")
    _print_metrics(experiment.metrics)
    print(f"artifacts: {artifacts_dir}")
    _write_trace(tracer, args)
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    import time

    experiment = Experiment.load(args.artifacts)
    ks = _parse_ks(args.ks) if args.ks else None
    profiler = Profiler()
    tracer = _make_tracer(args, "repro-evaluate")
    start = time.perf_counter()
    metrics = experiment.evaluate(
        ks=ks, split=args.split, workers=args.workers, shards=args.shards,
        profiler=profiler, tracer=tracer,
    )
    wall = time.perf_counter() - start
    _write_trace(tracer, args)
    label = args.split or experiment.spec.eval.split
    print(f"{experiment.spec.name} metrics ({label}):")
    _print_metrics(metrics)
    users = profiler.counter("evaluated_users")
    if users and wall > 0:
        # Phase shares come from the profiler (summed worker CPU seconds in
        # parallel modes); throughput is quoted over wall time.
        breakdown = profiler.format_phases()
        # "requested": non-factorizable models and restricted sandboxes fall
        # back to serial execution, which this process cannot observe here.
        workers_note = f", {args.workers} workers requested" if args.workers else ""
        shards_note = f", {args.shards} shards" if args.shards > 1 else ""
        print(
            f"evaluated {users:.0f} users in {wall:.2f}s "
            f"({users / wall:,.0f} users/s{workers_note}{shards_note}; {breakdown})"
        )
    if experiment.metrics and ks is None and args.split is None:
        drift = {
            name: abs(metrics[name] - stored)
            for name, stored in experiment.metrics.items()
            if name in metrics
        }
        worst = max(drift.values(), default=0.0)
        print(f"stored metrics.json reproduced to within {worst:.2e}")
        if args.check and worst > 1e-12:
            print(
                f"FAIL: reproduced metrics drift {worst:.2e} from stored "
                "metrics.json exceeds 1e-12 (--check)",
                file=sys.stderr,
            )
            return 1
    elif args.check:
        raise SystemExit("--check needs stored metrics and default --ks/--split")

    if args.ann_check:
        # Runs its own exact ranking pass (via the frozen index) on top of
        # the metrics pass above (via the live model): the recall gate must
        # compare the ANN against the surface it approximates — the index —
        # and reusing the protocol pass would couple the gate to eval ks /
        # split internals for a diagnostic command that runs offline.
        from .eval.ann import ann_recall_report

        try:
            ann = experiment.ann_index(
                n_lists=args.ann_lists,
                nprobe=args.ann_nprobe,
                kind=args.ann_kind,
                memory_ceiling_bytes=args.memory_ceiling,
            )
        except ExportError as error:
            print(f"--ann-check needs a servable index: {error}", file=sys.stderr)
            return 1
        eval_users = sorted(
            experiment.dataset.split_positive_sets(args.split or experiment.spec.eval.split)
        )
        report = ann_recall_report(
            experiment.index, ann, eval_users, k=args.ann_k, scorers=ann.scorers,
            nprobes=None if args.ann_nprobe is None else (args.ann_nprobe,),
        )
        failed = False
        for label, arm in report["arms"].items():
            recall = arm["recall_at_k"]
            # gate the arms whose results are exact after re-rank: the
            # exact-fine operating point and (when PQ is the default
            # scorer) the ADC+re-rank arm.  The int8 arm stays
            # informational — its recall ceiling is quantization itself.
            gated = arm["scorer"] == "exact" or (
                arm["scorer"] == "pq"
                and getattr(ann, "default_scorer", None) == "pq"
            )
            status = ""
            if gated and recall < args.ann_recall_floor:
                status = f"  FAIL (< {args.ann_recall_floor})"
                failed = True
            layout = (
                f"lists={ann.n_lists}" if hasattr(ann, "n_lists") else ann.kind
            )
            print(
                f"ann {label} ({layout}): "
                f"recall@{report['k']}={recall:.4f} vs exact over "
                f"{report['evaluated_users']} users{status}"
            )
        if failed:
            print(
                f"FAIL: ANN recall@{report['k']} below the "
                f"{args.ann_recall_floor} floor (--ann-check)",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    experiment = Experiment.load(args.artifacts)
    if args.out:
        out = args.out
    elif args.format == "dir":
        out = os.path.join(args.artifacts, "index")
    else:
        out = os.path.join(args.artifacts, INDEX_FILENAME)
    try:
        index = experiment.export(force=True)
    except ExportError as error:
        print(f"export failed: {error}", file=sys.stderr)
        return 1
    path = index.save(out, format=args.format)
    print(
        f"exported {index.model_name} index ({args.format}): {index.n_users} users x "
        f"{index.n_items} items, {len(index.branches)} branches, "
        f"{index.memory_bytes() / 1e3:.0f} kB -> {path}"
    )
    if args.ann or args.ann_kind is not None or args.memory_ceiling is not None:
        from .serving.ann import build_ivf, build_pq

        kind = args.ann_kind or "ivf"
        if args.memory_ceiling is not None and kind == "pq":
            print(
                "--memory-ceiling needs an IVF kind (the tiered layout pages "
                "IVF lists); use --ann-kind ivf or ivf-pq",
                file=sys.stderr,
            )
            return 1
        if kind == "pq":
            ann = build_pq(index)
            ann_path = ann.save(os.path.join(args.artifacts, ANN_FILENAME))
        else:
            ann = build_ivf(
                index,
                n_lists=args.ann_lists,
                nprobe=args.ann_nprobe,
                pq=(kind == "ivf-pq"),
            )
            if args.memory_ceiling is not None:
                # Tiered serving attaches to an include_items dir archive
                # (mmap-able per-array .npy files), not the compact npz.
                ann_path = ann.save(
                    os.path.join(args.artifacts, ANN_DIRNAME),
                    format="dir",
                    include_items=True,
                )
            else:
                ann_path = ann.save(os.path.join(args.artifacts, ANN_FILENAME))
        report = ann.memory_report()
        tier_note = (
            f", ceiling {args.memory_ceiling / 1e6:.0f} MB (tiered dir archive)"
            if args.memory_ceiling is not None
            else ""
        )
        lists_note = (
            f"{ann.n_lists} lists, default nprobe {ann.nprobe}, "
            if hasattr(ann, "n_lists")
            else ""
        )
        print(
            f"exported ANN index ({report['kind']}): {lists_note}"
            f"{report['bytes_per_item']:.1f} B/item"
            f"{tier_note} -> {ann_path}"
        )
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    import time

    from .runtime import recommend_all

    experiment = Experiment.load(args.artifacts)
    try:
        index = experiment.index
    except ExportError as error:
        print(f"cannot build recommendations for this artifact: {error}", file=sys.stderr)
        return 1
    users = [int(u) for u in args.users.split(",")] if args.users else None
    ann = None
    if args.ann or args.ann_kind is not None or args.memory_ceiling is not None:
        ann = experiment.ann_index(
            n_lists=args.ann_lists,
            nprobe=args.ann_nprobe,
            kind=args.ann_kind,
            memory_ceiling_bytes=args.memory_ceiling,
        )
    tracer = _make_tracer(args, "repro-recommend")
    start = time.perf_counter()
    recommendations = recommend_all(
        index,
        k=args.k,
        users=users,
        workers=args.workers,
        shards=args.shards,
        ann=ann,
        tracer=tracer,
    )
    wall = time.perf_counter() - start
    _write_trace(tracer, args)
    out = args.out or os.path.join(args.artifacts, "recommendations.npz")
    path = recommendations.save(out)
    n = len(recommendations.users)
    rate = n / wall if wall > 0 else 0.0
    workers_note = f", {args.workers} workers requested" if args.workers else ""
    shards_note = f", {args.shards} shards" if args.shards > 1 else ""
    ann_note = f", ann nprobe {ann.nprobe}/{ann.n_lists}" if ann is not None else ""
    print(
        f"exported top-{recommendations.k} for {n} users in {wall:.2f}s "
        f"({rate:,.0f} users/s{workers_note}{shards_note}{ann_note}) -> {path}"
    )
    return 0


def _resilience_from_args(args: argparse.Namespace):
    """A ResilienceConfig when --resilience asked for one, else None."""
    if not getattr(args, "resilience", False):
        return None
    from .serving.resilience import ResilienceConfig

    return ResilienceConfig(retries=args.retries, degrade=not args.no_degrade)


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Retry/breaker/degradation knobs shared by serve and loadtest."""
    parser.add_argument(
        "--resilience", action="store_true",
        help="enable the resilience policy: retry transient backend errors "
        "with exponential backoff, trip a circuit breaker on sustained "
        "failure, degrade to cached/profile answers (docs/robustness.md)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retry a failed batch up to N times before degrading "
        "(with --resilience; default: %(default)s)",
    )
    parser.add_argument(
        "--no-degrade", action="store_true",
        help="fail with BackendError instead of serving degraded answers "
        "once retries are exhausted (with --resilience)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline: a request still queued after this long "
        "fails with DeadlineExceeded instead of running late "
        "(default: none)",
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    if args.hold and args.metrics_port is None:
        raise SystemExit("--hold keeps the metrics endpoint up; it needs --metrics-port")
    experiment = Experiment.load(args.artifacts)
    tracer = _make_tracer(args, "repro-serve")
    try:
        ann = None
        if args.ann or args.ann_kind is not None or args.memory_ceiling is not None:
            ann = experiment.ann_index(
                n_lists=args.ann_lists,
                nprobe=args.ann_nprobe,
                kind=args.ann_kind,
                memory_ceiling_bytes=args.memory_ceiling,
            )
            if hasattr(ann, "n_lists"):
                print(
                    f"approximate retrieval ({ann.kind}): {ann.n_lists} lists, "
                    f"nprobe {ann.nprobe} (filters and exclusions apply at re-rank)"
                )
            else:
                print(
                    f"approximate retrieval ({ann.kind}): "
                    f"{ann.bytes_per_item:.1f} B/item full-scan ADC, exact re-rank"
                )
        service = experiment.service(
            default_k=args.k, ann=ann, tracer=tracer,
            resilience=_resilience_from_args(args),
        )
    except ExportError as error:
        print(f"cannot serve this artifact: {error}", file=sys.stderr)
        return 1
    if service.resilience is not None:
        print(
            f"resilience: {service.resilience.config.retries} retries, "
            "circuit breaker armed, degradation ladder on"
        )

    gateway = None
    if args.gateway:
        from .serving.gateway import GatewayConfig, ServingGateway

        gateway = ServingGateway(
            service,
            GatewayConfig(
                max_queue_depth=args.queue_depth,
                max_wait_ms=args.max_wait_ms,
                rate_limit=args.rate_limit,
                deadline_ms=args.deadline_ms,
            ),
        )
        limit_note = (
            f", {args.rate_limit:g} req/s per tenant" if args.rate_limit else ""
        )
        print(
            f"gateway: queue depth {args.queue_depth}, "
            f"max wait {args.max_wait_ms:g} ms{limit_note}"
        )

    server = None
    if args.metrics_port is not None:
        from .obs.server import MetricsServer

        server = MetricsServer(
            service.registry,
            port=args.metrics_port,
            stats_fn=service.stats.extended_snapshot,
            update_fn=gateway.sync_gauges if gateway is not None else service._sync_gauges,
        ).start()
        print(f"metrics: {server.url('/metrics')} (also /stats, /healthz)")

    if args.users and not args.dry_run:
        users = [int(u) for u in args.users.split(",")]
    else:
        # Dry run: a few warm users plus one unknown id to exercise fallback.
        warm = [u for u in range(service.index.n_users) if service.index.is_warm(u)]
        users = warm[:3] + [service.index.n_users + 10_000]
    if gateway is not None:
        # Through the admission queue: flushes come from the gateway's
        # dual trigger, so the demo exercises the full serving pipeline.
        pendings = [gateway.submit(user) for user in users]
        answers = [pending.result(timeout=30.0) for pending in pendings]
    else:
        answers = service.recommend_many(users)
    for recommendation in answers:
        items = ", ".join(str(int(item)) for item in recommendation.items)
        print(f"user {recommendation.user} [{recommendation.source}]: {items}")
    snapshot = service.stats.snapshot()
    print(
        f"served {snapshot['requests']:.0f} requests | "
        f"p50 {snapshot['latency_p50_ms']:.3f} ms | {snapshot['qps']:.0f} QPS"
    )
    # The trace is written before any --hold loop so a scraper driving this
    # process (CI smoke) can validate it without waiting for shutdown.
    _write_trace(tracer, args)
    if server is not None:
        if args.hold:
            print(f"holding metrics endpoint on port {server.port}; Ctrl-C to exit",
                  flush=True)
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
        server.stop()
    if gateway is not None:
        gateway.close()
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive a synthetic workload through the full gateway stack.

    ``--chaos`` installs a deterministic fault plan (seeded, reproducible)
    across the scorer, the ANN path, and the gateway flusher, then audits
    the end-of-run books: every admitted request must resolve exactly once
    as ok / degraded / failed.  Exit code 1 on an accounting violation.
    """
    import json as _json

    if args.list_fault_points:
        from .faults import describe_fault_points

        for point, description in describe_fault_points().items():
            print(f"{point:28s} {description}")
        return 0
    if args.artifacts is None:
        print("artifacts directory is required (or use --list-fault-points)",
              file=sys.stderr)
        return 2

    experiment = Experiment.load(args.artifacts)
    from .loadgen import (
        ArrivalSchedule,
        WorkloadConfig,
        build_workload,
        run_chaos,
        run_closed_loop,
        run_open_loop,
    )
    from .serving.gateway import GatewayConfig, ServingGateway

    plan = None
    if args.chaos:
        from .faults import chaos_plan

        plan = chaos_plan(
            seed=args.chaos_seed,
            worker_crashes=0,  # the CLI service runs an in-process scorer
            scorer_errors=args.chaos_scorer_errors,
            ann_failures=args.chaos_ann_failures if args.ann else 0,
            flusher_crashes=args.chaos_flusher_crashes,
            scorer_delays=args.chaos_scorer_delays,
        )
        if not args.resilience:
            # Chaos without resilience just proves requests fail; the
            # interesting run is faults + the ladder, so default it on.
            args.resilience = True

    try:
        ann = None
        if args.ann:
            ann = experiment.ann_index()
        service = experiment.service(
            default_k=args.k,
            ann=ann,
            resilience=_resilience_from_args(args),
            fault_plan=plan,
        )
    except ExportError as error:
        print(f"cannot serve this artifact: {error}", file=sys.stderr)
        return 1

    gateway = ServingGateway(
        service,
        GatewayConfig(
            max_queue_depth=args.queue_depth,
            max_wait_ms=args.max_wait_ms,
            rate_limit=args.rate_limit,
            deadline_ms=args.deadline_ms,
        ),
        fault_plan=plan,
    )

    server = None
    if args.metrics_port is not None:
        from .obs.server import MetricsServer

        server = MetricsServer(
            service.registry,
            port=args.metrics_port,
            stats_fn=service.stats.extended_snapshot,
            update_fn=gateway.sync_gauges,
        ).start()
        print(f"metrics: {server.url('/metrics')} (also /stats, /healthz)")

    workload = build_workload(
        WorkloadConfig(
            n_requests=args.requests,
            n_users=service.index.n_users,
            cold_fraction=args.cold_fraction,
        ),
        seed=args.workload_seed,
    )
    exit_code = 0
    try:
        if args.chaos:
            chaos_report = run_chaos(
                gateway, workload, plan=plan, threads=args.threads
            )
            payload = chaos_report.to_dict()
            if chaos_report.ok:
                print("chaos audit: books balance "
                      "(admitted == ok + degraded + failed)")
            else:
                for violation in chaos_report.violations:
                    print(f"chaos audit FAILED: {violation}", file=sys.stderr)
                exit_code = 1
        elif args.mode == "closed":
            payload = run_closed_loop(
                gateway, workload, threads=args.threads
            ).to_dict()
        else:
            payload = run_open_loop(
                gateway, workload, schedule=ArrivalSchedule(rate=args.rate_qps)
            ).to_dict()
        report = payload["load"] if args.chaos else payload
        print(
            f"{report['n_requests']} requests: {report['n_ok']} ok, "
            f"{report['n_degraded']} degraded, {report['failed_total']} failed, "
            f"{report['shed_total']} shed, {report['n_timeout']} timeout | "
            f"{report['qps']:.0f} QPS, p99 {report['p99_ms']:.3f} ms"
        )
        if args.out:
            with open(args.out, "w") as sink:
                _json.dump(payload, sink, indent=2, sort_keys=True)
            print(f"report written to {args.out}")
    finally:
        if server is not None:
            server.stop()
        gateway.close()
    return exit_code


def cmd_lifecycle(args: argparse.Namespace) -> int:
    """Drive the streaming catalog lifecycle against a version store.

    ``init`` bootstraps the store from a trained artifact dir; ``ingest``
    journals events (``--simulate`` synthesizes a deterministic stream,
    ``--events`` reads JSONL); ``build`` folds the journal into a
    candidate version; ``promote`` gates and flips; ``rollback`` returns
    to the live version's parent; ``status`` prints the store state.
    Exit code 1 when a promotion is rejected by the gates.
    """
    import json as _json

    from .lifecycle import (
        Event,
        GateConfig,
        LifecycleConfig,
        LifecycleController,
        simulate_events,
    )

    gates = GateConfig(
        recall_k=args.recall_k,
        recall_floor=args.recall_floor,
        nprobe=args.gate_nprobe,
        seed=args.seed,
    )
    controller = LifecycleController(
        args.store,
        config=LifecycleConfig(
            gates=gates, staleness_threshold=args.staleness_threshold
        ),
    )
    if controller.recovery["swept"] or controller.recovery["restamped"]:
        print(f"recovery: {controller.recovery}")

    if args.lifecycle_command == "init":
        experiment = Experiment.load(args.artifacts)
        ann = experiment.ann_index(
            n_lists=args.ann_lists, nprobe=args.ann_nprobe
        )
        name = controller.bootstrap(experiment.index, ann)
        print(f"bootstrapped {name} (live)")
        return 0

    if args.lifecycle_command == "ingest":
        if args.simulate is not None:
            live = controller.store.current()
            if live is None:
                print("store has no live version; run `lifecycle init` first",
                      file=sys.stderr)
                return 1
            manifest = controller.store.read_manifest(live)
            from .lifecycle.journal import last_seq as _last_seq

            events = simulate_events(
                n_users=int(manifest["n_users"]),
                n_items=int(manifest["n_items"]),
                count=args.simulate,
                seed=args.seed,
                start_seq=_last_seq(controller.store.journal_dir) + 1,
            )
        else:
            with open(args.events, "r", encoding="utf-8") as fh:
                events = [
                    Event(**_json.loads(line))
                    for line in fh
                    if line.strip()
                ]
        stats = controller.ingest(events)
        print(
            f"ingested {stats['appended']} events "
            f"({stats['skipped']} duplicates skipped), "
            f"journal at seq {stats['last_seq']}"
        )
        return 0

    if args.lifecycle_command == "build":
        name = controller.build()
        if name is None:
            print("journal holds nothing past the live version; no candidate built")
            return 0
        manifest = controller.store.read_manifest(name)
        fold = manifest["fold"]
        print(
            f"candidate {name}: +{fold['new_users']} users, "
            f"+{fold['new_items']} items, {fold['interactions']} interactions, "
            f"{fold['reprices']} reprices; "
            f"{'re-clustered' if manifest['reclustered'] else 'delta build'} "
            f"(staleness {manifest.get('staleness', 0):.3f})"
        )
        return 0

    if args.lifecycle_command == "promote":
        name, report = controller.promote(candidate=args.candidate)
        for gate, result in report.gates.items():
            print(f"gate {gate}: {result}")
        if name is None:
            for failure in report.failures:
                print(f"promotion REJECTED: {failure}", file=sys.stderr)
            return 1
        print(f"promoted {name} (live)")
        return 0

    if args.lifecycle_command == "rollback":
        name = controller.rollback(reason=args.reason)
        print(f"rolled back; {name} is live")
        return 0

    # status
    payload = controller.status()
    print(_json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    names = args.models.split(",") if args.models else list(PAPER_HPARAMS)
    ks = _parse_ks(args.ks)
    metric_names = [f"{metric}@{k}" for k in ks for metric in ("Recall", "NDCG")]

    rows: List[List[str]] = []
    for name in names:
        spec = ExperimentSpec.create(
            name,
            args.dataset,
            hparams=dict(PAPER_HPARAMS.get(resolve_model_name(name), {})),
            seed=args.seed,
            scale=args.scale,
            epochs=args.epochs,
            lr_milestones=(args.epochs // 2, (3 * args.epochs) // 4),
            ks=ks,
            export=False,
        )
        experiment = run(spec, verbose=not args.quiet)
        rows.append(
            [model_display_name(spec.model.name)]
            + [f"{experiment.metrics[m]:.4f}" for m in metric_names]
        )

    header = ["method", *metric_names]
    widths = [max(len(row[i]) for row in [header, *rows]) for i in range(len(header))]
    print(f"\ndataset: {args.dataset} (scale {args.scale}, {args.epochs} epochs)")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_ann_build_flags(parser: argparse.ArgumentParser) -> None:
    """ANN construction knobs shared by export/serve/recommend/evaluate."""
    parser.add_argument(
        "--ann-lists", type=int, default=None,
        help="IVF list count (default: ~sqrt(n_items)/2)",
    )
    parser.add_argument(
        "--ann-nprobe", type=int, default=None,
        help="default lists probed per query (default: 1/8 of the lists)",
    )
    parser.add_argument(
        "--ann-kind", choices=("ivf", "ivf-pq", "pq"), default=None,
        help="index family: exact-fine IVF (default), IVF with "
        "product-quantized ADC candidates + exact re-rank, or a "
        "standalone full-scan PQ index",
    )
    parser.add_argument(
        "--memory-ceiling", type=int, default=None, metavar="BYTES",
        help="tiered layout: keep the ANN index's resident footprint under "
        "this many bytes (hot lists in RAM, the rest mmap-paged; "
        "IVF kinds only)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified experiment CLI for the PUP reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="registered models and datasets").set_defaults(
        func=cmd_list
    )

    train = commands.add_parser("train", help="run one experiment, write artifacts")
    train.add_argument("--model", help="registry name (see `list`)")
    train.add_argument("--dataset", help="dataset name (see `list`)")
    train.add_argument("--spec", help="load a full ExperimentSpec JSON instead of flags")
    train.add_argument("--scale", type=float, help="dataset scale (default 1.0)")
    train.add_argument("--seed", type=int, help="model init + training seed (default 0)")
    train.add_argument("--data-seed", type=int)
    train.add_argument("--epochs", type=int, help="default 40")
    train.add_argument("--batch-size", type=int)
    train.add_argument("--lr", type=float)
    train.add_argument("--l2", type=float)
    train.add_argument("--lr-milestones", help="comma-separated epoch numbers")
    train.add_argument("--eval-every", type=int)
    train.add_argument("--ks", help="eval cutoffs, comma-separated (default 50,100)")
    train.add_argument("--split", choices=("train", "validation", "test"))
    train.add_argument(
        "--hparam", action="append", metavar="KEY=VALUE", help="model hyper-parameter"
    )
    train.add_argument("--name", help="experiment name (default: <model>_<dataset>)")
    train.add_argument("--out", help="artifact directory (default: runs/<name>)")
    train.add_argument("--no-export", action="store_true", help="skip the serving index")
    train.add_argument(
        "--precision",
        choices=("float32", "float64"),
        help="compute precision for build+train+export, recorded in spec.json "
        "(default float64; float32 is ~2x training throughput, see "
        "docs/performance.md)",
    )
    train.add_argument(
        "--eval-workers", type=int, default=0,
        help="parallel workers for the final evaluation pass (results identical)",
    )
    train.add_argument("--eval-shards", type=int, default=1)
    train.add_argument("--quiet", action="store_true")
    _add_trace_flag(train)
    train.set_defaults(func=cmd_train)

    evaluate = commands.add_parser("evaluate", help="re-evaluate a saved artifact dir")
    evaluate.add_argument("artifacts", help="artifact directory written by `train`")
    evaluate.add_argument("--ks", help="override eval cutoffs")
    evaluate.add_argument("--split", choices=("train", "validation", "test"))
    evaluate.add_argument(
        "--workers", type=int, default=0,
        help="parallel evaluation workers (0 = serial; results are identical)",
    )
    evaluate.add_argument(
        "--shards", type=int, default=1,
        help="item-range shards per chunk (bounds peak score-buffer memory)",
    )
    evaluate.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless stored metrics.json is reproduced to 1e-12 "
        "(CI guardrail for the parallel == serial determinism contract)",
    )
    evaluate.add_argument(
        "--ann-check", action="store_true",
        help="measure ANN recall vs exact rankings over the eval users; exit "
        "non-zero if the exact-fine arm falls below --ann-recall-floor",
    )
    evaluate.add_argument("--ann-k", type=int, default=50, help="recall cutoff (default 50)")
    evaluate.add_argument(
        "--ann-recall-floor", type=float, default=0.95,
        help="minimum acceptable recall@K for --ann-check (default 0.95)",
    )
    _add_ann_build_flags(evaluate)
    _add_trace_flag(evaluate)
    evaluate.set_defaults(func=cmd_evaluate)

    export = commands.add_parser("export", help="rebuild the serving index")
    export.add_argument("artifacts", help="artifact directory written by `train`")
    export.add_argument(
        "--out", help="index path (default: <artifacts>/index.npz, or <artifacts>/index for --format dir)"
    )
    export.add_argument(
        "--format", choices=("npz", "dir"), default="npz",
        help="container: compressed .npz (default) or an uncompressed per-array "
        "directory that loads with mmap (what parallel workers attach to)",
    )
    export.add_argument(
        "--ann", action="store_true",
        help="also build and save the approximate-retrieval index "
        "(IVF lists + int8 codes) next to the embedding index",
    )
    _add_ann_build_flags(export)
    export.set_defaults(func=cmd_export)

    recommend = commands.add_parser(
        "recommend", help="bulk top-K export for every warm user"
    )
    recommend.add_argument("artifacts", help="artifact directory written by `train`")
    recommend.add_argument("--k", type=int, default=10)
    recommend.add_argument("--users", help="comma-separated user ids (default: all warm users)")
    recommend.add_argument(
        "--out", help="output archive (default: <artifacts>/recommendations.npz)"
    )
    recommend.add_argument(
        "--workers", type=int, default=0,
        help="parallel workers (0 = serial; results are identical)",
    )
    recommend.add_argument("--shards", type=int, default=1, help="item-range shards")
    recommend.add_argument(
        "--ann", action="store_true",
        help="candidate-generation mode: rank through the saved/built ANN "
        "index instead of exact full-catalog scoring",
    )
    _add_ann_build_flags(recommend)
    _add_trace_flag(recommend)
    recommend.set_defaults(func=cmd_recommend)

    serve = commands.add_parser("serve", help="answer queries from an artifact dir")
    serve.add_argument("artifacts", help="artifact directory written by `train`")
    serve.add_argument("--users", help="comma-separated user ids")
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument(
        "--dry-run",
        action="store_true",
        help="serve a sample of warm users plus one cold id, then exit; "
        "overrides --users (also the default when --users is omitted)",
    )
    serve.add_argument(
        "--ann", action="store_true",
        help="serve through approximate retrieval (saved ann.npz if present, "
        "else built with defaults); filters apply at re-rank",
    )
    serve.add_argument(
        "--metrics-port", type=int, metavar="PORT",
        help="serve /metrics (Prometheus exposition), /stats (JSON), and "
        "/healthz on 127.0.0.1:PORT while this command runs (0 = ephemeral; "
        "the bound port is printed)",
    )
    serve.add_argument(
        "--hold", action="store_true",
        help="after answering the queries, keep the --metrics-port endpoint "
        "up until Ctrl-C (for scraping a live process)",
    )
    serve.add_argument(
        "--gateway", action="store_true",
        help="serve through the concurrent gateway (bounded admission queue, "
        "dual-trigger batching, per-tenant rate limits; docs/serving.md)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=1024, metavar="N",
        help="gateway admission-queue bound; requests beyond it are shed "
        "with Overloaded (default: %(default)s)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0, metavar="MS",
        help="gateway latency trigger: flush a partial batch once its oldest "
        "request has waited this long (default: %(default)s)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-tenant token-bucket rate limit in requests/second "
        "(default: unlimited)",
    )
    _add_resilience_flags(serve)
    _add_ann_build_flags(serve)
    _add_trace_flag(serve)
    serve.set_defaults(func=cmd_serve)

    loadtest = commands.add_parser(
        "loadtest",
        help="drive synthetic load through the gateway; --chaos injects "
        "deterministic faults and audits the accounting",
    )
    loadtest.add_argument(
        "artifacts", nargs="?", default=None,
        help="artifact directory written by `train`",
    )
    loadtest.add_argument(
        "--list-fault-points", action="store_true",
        help="print every named fault-injection point (the registry all "
        "chaos plans and docs draw from) and exit",
    )
    loadtest.add_argument("--k", type=int, default=10)
    loadtest.add_argument(
        "--requests", type=int, default=500, metavar="N",
        help="workload size (default: %(default)s)",
    )
    loadtest.add_argument(
        "--threads", type=int, default=8, metavar="N",
        help="closed-loop client threads (default: %(default)s)",
    )
    loadtest.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="load discipline: closed loop (sustainable throughput) or "
        "open loop (wall-clock arrivals; exposes backpressure)",
    )
    loadtest.add_argument(
        "--rate-qps", type=float, default=1000.0, metavar="QPS",
        help="open-loop arrival rate (default: %(default)s)",
    )
    loadtest.add_argument(
        "--cold-fraction", type=float, default=0.05, metavar="F",
        help="fraction of requests from never-seen users (default: %(default)s)",
    )
    loadtest.add_argument(
        "--workload-seed", type=int, default=0,
        help="workload generation seed (same seed → identical request list)",
    )
    loadtest.add_argument(
        "--ann", action="store_true",
        help="serve through approximate retrieval (enables the ANN-failure "
        "fault under --chaos, which falls back to exact search)",
    )
    loadtest.add_argument(
        "--chaos", action="store_true",
        help="install a seeded fault plan (scorer errors/delays, flusher "
        "crashes, ANN failures with --ann), run closed-loop, then audit "
        "that every admitted request resolved exactly once; implies "
        "--resilience",
    )
    loadtest.add_argument(
        "--chaos-seed", type=int, default=0,
        help="fault-plan seed (same seed → identical fault schedule)",
    )
    loadtest.add_argument(
        "--chaos-scorer-errors", type=int, default=2, metavar="N",
        help="deterministic scorer exceptions to inject (default: %(default)s)",
    )
    loadtest.add_argument(
        "--chaos-scorer-delays", type=int, default=1, metavar="N",
        help="slow-scorer stalls to inject (default: %(default)s)",
    )
    loadtest.add_argument(
        "--chaos-flusher-crashes", type=int, default=1, metavar="N",
        help="gateway flusher crashes to inject (default: %(default)s)",
    )
    loadtest.add_argument(
        "--chaos-ann-failures", type=int, default=1, metavar="N",
        help="ANN search failures to inject with --ann (default: %(default)s)",
    )
    loadtest.add_argument(
        "--queue-depth", type=int, default=1024, metavar="N",
        help="gateway admission-queue bound (default: %(default)s)",
    )
    loadtest.add_argument(
        "--max-wait-ms", type=float, default=2.0, metavar="MS",
        help="gateway latency flush trigger (default: %(default)s)",
    )
    loadtest.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-tenant rate limit (default: unlimited)",
    )
    loadtest.add_argument(
        "--metrics-port", type=int, metavar="PORT",
        help="expose /metrics on 127.0.0.1:PORT for the duration of the run "
        "(0 = ephemeral; the bound port is printed)",
    )
    loadtest.add_argument(
        "--out", metavar="PATH", help="write the full report as JSON"
    )
    _add_resilience_flags(loadtest)
    loadtest.set_defaults(func=cmd_loadtest)

    lifecycle = commands.add_parser(
        "lifecycle",
        help="crash-safe streaming catalog lifecycle: journaled ingest, "
        "delta builds, health-gated versioned rollout",
    )
    lc_commands = lifecycle.add_subparsers(dest="lifecycle_command", required=True)

    def _lc_parser(name: str, help: str) -> argparse.ArgumentParser:
        sub = lc_commands.add_parser(name, help=help)
        sub.add_argument("store", help="version-store root directory")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--recall-floor", type=float, default=0.95,
            help="promotion gate: minimum recall@k vs exact (default: %(default)s)",
        )
        sub.add_argument(
            "--recall-k", type=int, default=50,
            help="promotion gate recall depth (default: %(default)s)",
        )
        sub.add_argument(
            "--gate-nprobe", type=int, default=None,
            help="operating point for the recall gate (default: the "
            "candidate's own nprobe)",
        )
        sub.add_argument(
            "--staleness-threshold", type=float, default=0.25,
            help="append-placed catalog fraction that forces a full "
            "re-cluster (default: %(default)s)",
        )
        sub.set_defaults(func=cmd_lifecycle)
        return sub

    lc_init = _lc_parser("init", "bootstrap the store from a trained artifact dir")
    lc_init.add_argument("--artifacts", required=True,
                         help="artifact directory written by `train`")
    lc_init.add_argument("--ann-lists", type=int, default=None)
    lc_init.add_argument("--ann-nprobe", type=int, default=None)

    lc_ingest = _lc_parser("ingest", "journal catalog events (exactly-once)")
    source = lc_ingest.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--simulate", type=int, metavar="N",
        help="synthesize N deterministic events against the live catalog",
    )
    source.add_argument(
        "--events", metavar="PATH",
        help="JSONL file of events (seq/kind/user/item/price/category)",
    )

    _lc_parser("build", "fold the journal into a candidate version")

    lc_promote = _lc_parser("promote", "gate a candidate; flip CURRENT on pass")
    lc_promote.add_argument(
        "--candidate", default=None,
        help="candidate version name (default: newest candidate)",
    )

    lc_rollback = _lc_parser("rollback", "return to the live version's parent")
    lc_rollback.add_argument("--reason", default="manual rollback")

    _lc_parser("status", "print the store + journal state as JSON")

    compare = commands.add_parser("compare", help="train several models, print a table")
    compare.add_argument(
        "--models", help="comma-separated registry names (default: the Table II eight)"
    )
    compare.add_argument("--dataset", default="yelp")
    compare.add_argument("--scale", type=float, default=0.5)
    compare.add_argument("--epochs", type=int, default=25)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--ks", default="50,100")
    compare.add_argument("--quiet", action="store_true")
    compare.set_defaults(func=cmd_compare)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
