"""Optimizers: SGD and Adam, plus a step-decay learning-rate schedule.

The paper trains every model with Adam (initial lr 1e-2) and decays the
learning rate by 10x twice during training; :class:`StepDecay` reproduces
that schedule.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    The update runs fully in place: moment buffers and one scratch buffer
    per parameter are preallocated once (in the parameter's own dtype, so a
    float32 model keeps float32 optimizer state), and every step reuses them
    instead of allocating ``m_hat``/``v_hat``/update temporaries per call —
    the optimizer is pure memory traffic, so the allocation-free form is
    measurably faster on large embedding tables.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v, scratch in zip(self.params, self._m, self._v, self._scratch):
            if param.grad is None:
                continue
            grad = param.grad
            # m <- beta1*m + (1-beta1)*grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m += scratch
            # v <- beta2*v + (1-beta2)*grad^2
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.beta2
            v += scratch
            # param <- param - (lr/bias1) * m / (sqrt(v/bias2) + eps)
            np.divide(v, bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= self.lr / bias1
            param.data -= scratch


class StepDecay:
    """Multiply the optimizer lr by ``factor`` at each epoch in ``milestones``.

    The paper reduces the learning rate "by a factor of 10 twice" over the
    200-epoch run; e.g. ``StepDecay(opt, milestones=[100, 150], factor=0.1)``.
    """

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], factor: float = 0.1) -> None:
        if factor <= 0:
            raise ValueError(f"decay factor must be positive, got {factor}")
        self.optimizer = optimizer
        self.milestones = sorted(int(m) for m in milestones)
        self.factor = factor
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch, applying decay if a milestone is crossed."""
        self._epoch += 1
        if self._epoch in self.milestones:
            self.optimizer.lr *= self.factor

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
