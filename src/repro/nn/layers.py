"""Neural layers: Embedding, Linear, Dropout and a small MLP.

These are the only layers the paper's models need — PUP, GC-MC and NGCF are
embedding tables plus sparse graph convolutions; DeepFM adds an MLP tower.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Embedding(Module):
    """A lookup table of ``num_embeddings`` rows of size ``embedding_dim``.

    ``weight`` is the full table; :meth:`__call__` gathers rows by index with
    correct gradient scatter for repeated indices.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        std: float = 0.01,
        dtype=None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError(
                f"Embedding dims must be positive, got ({num_embeddings}, {embedding_dim})"
            )
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal(rng, (num_embeddings, embedding_dim), std=std, dtype=dtype),
            name="embedding",
        )

    def __call__(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return self.weight.gather_rows(indices)

    def all(self) -> Tensor:
        """The whole table as a tensor (input to graph convolutions)."""
        return self.weight


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        dtype=None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(rng, (in_features, out_features), dtype=dtype),
            name="linear.weight",
        )
        self.bias = Parameter(init.zeros((out_features,), dtype=dtype), name="linear.bias") if bias else None

    def __call__(self, inputs: Tensor) -> Tensor:
        out = inputs.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng or np.random.default_rng()

    def __call__(self, inputs: Tensor) -> Tensor:
        return inputs.dropout(self.rate, self.rng, training=self.training)


class MLP(Module):
    """A stack of Linear+ReLU layers with optional dropout (DeepFM tower)."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        dropout: float = 0.0,
        output_activation: bool = False,
    ) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng()
        self.layers = [
            Linear(n_in, n_out, rng=rng)
            for n_in, n_out in zip(layer_sizes[:-1], layer_sizes[1:])
        ]
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self.output_activation = output_activation

    def __call__(self, inputs: Tensor) -> Tensor:
        out = inputs
        last = len(self.layers) - 1
        for index, layer in enumerate(self.layers):
            out = layer(out)
            if index < last or self.output_activation:
                out = out.relu()
                if self.dropout is not None:
                    out = self.dropout(out)
        return out
