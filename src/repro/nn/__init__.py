"""Pure-NumPy neural-network substrate (autograd, layers, optimizers, losses).

This package replaces PyTorch for the reproduction: reverse-mode autograd
:class:`~repro.nn.tensor.Tensor`, embedding/linear/dropout layers, SGD/Adam
optimizers with step decay, and the BPR/BCE losses used in the paper.
"""

from .precision import default_dtype, precision, resolve_dtype, set_default_dtype
from .tensor import Tensor, concat, stack_sum, unbroadcast
from .module import Module, Parameter
from .layers import Embedding, Linear, Dropout, MLP
from .optim import SGD, Adam, StepDecay
from .losses import (
    bpr_loss,
    bpr_loss_paper_eq4,
    bce_loss,
    fused_bpr_loss,
    fused_l2_on_batch,
    l2_regularization,
    l2_on_batch,
)
from . import init

__all__ = [
    "Tensor",
    "concat",
    "stack_sum",
    "unbroadcast",
    "Module",
    "Parameter",
    "Embedding",
    "Linear",
    "Dropout",
    "MLP",
    "SGD",
    "Adam",
    "StepDecay",
    "bpr_loss",
    "bpr_loss_paper_eq4",
    "bce_loss",
    "fused_bpr_loss",
    "fused_l2_on_batch",
    "l2_regularization",
    "l2_on_batch",
    "init",
    "precision",
    "default_dtype",
    "set_default_dtype",
    "resolve_dtype",
]
