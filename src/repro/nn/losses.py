"""Loss functions: BPR pairwise ranking loss, BCE, and L2 regularization.

The paper (Eq. 4) trains all models with Bayesian Personalized Ranking:

    L = sum_{(u,i,j)} -ln( sigma(s(u,i)) - sigma(s(u,j)) ) + lambda * ||Theta||^2

Note the unusual form: the sigmoid is applied to each score *before* the
difference.  The de-facto standard BPR is ``-ln sigma(s_i - s_j)``
(softplus of the negative margin).  We implement the standard, numerically
stable form as :func:`bpr_loss` (what the reference PUP code uses) and keep
the literal Eq. 4 as :func:`bpr_loss_paper_eq4` for fidelity experiments.

Fused kernels
-------------
:func:`fused_bpr_loss` and :func:`fused_l2_on_batch` compute the same values
as :func:`bpr_loss` / :func:`l2_on_batch` but as *single* autograd nodes
with hand-written backward closures, instead of chains of elementwise graph
nodes.  Per training step that removes roughly a dozen intermediate arrays
and their gradient buffers; the trainer uses the fused forms by default
(``TrainConfig.fused_kernels``) and falls back to the composed forms for
the pre-refactor comparison arm of ``benchmarks/bench_training.py``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .module import Parameter
from .tensor import Tensor, _stable_sigmoid


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Standard BPR: mean softplus(neg - pos).

    Equivalent to ``-mean(log sigma(pos - neg))`` but computed with
    ``log(1+exp(x))`` for stability at large margins.
    """
    if pos_scores.shape != neg_scores.shape:
        raise ValueError(
            f"positive/negative score shapes differ: {pos_scores.shape} vs {neg_scores.shape}"
        )
    margin = neg_scores - pos_scores
    return margin.softplus().mean()


def fused_bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Numerically-stable fused BPR: ``mean softplus(neg - pos)`` as one node.

    Forward computes ``log(1 + exp(neg - pos))`` directly on the arrays and
    caches ``sigmoid(neg - pos)``; backward distributes
    ``±sigmoid(margin) / n`` to the two score tensors in a single pass.
    Matches :func:`bpr_loss` to within floating-point round-off.
    """
    if pos_scores.shape != neg_scores.shape:
        raise ValueError(
            f"positive/negative score shapes differ: {pos_scores.shape} vs {neg_scores.shape}"
        )
    margin = neg_scores.data - pos_scores.data
    out_data = np.asarray(np.logaddexp(0.0, margin).mean(), dtype=margin.dtype)
    sig = _stable_sigmoid(margin)
    scale = 1.0 / max(margin.size, 1)
    requires = pos_scores.requires_grad or neg_scores.requires_grad
    track = requires or pos_scores._parents or neg_scores._parents

    def _backward(grad: np.ndarray) -> None:
        g = sig * (grad * scale)
        if neg_scores.requires_grad or neg_scores._parents:
            neg_scores._accumulate_any(g)
        if pos_scores.requires_grad or pos_scores._parents:
            pos_scores._accumulate_any(-g)

    if not track:
        return Tensor(out_data)
    return Tensor(
        out_data, requires_grad=requires, parents=(pos_scores, neg_scores), backward_fn=_backward
    )


def bpr_loss_paper_eq4(pos_scores: Tensor, neg_scores: Tensor, eps: float = 1e-8) -> Tensor:
    """The literal Eq. 4 loss: ``-ln( sigma(s_pos) - sigma(s_neg) )``.

    Only defined when ``sigma(s_pos) > sigma(s_neg)``; we clamp the argument
    by ``eps`` through a softplus-free formulation.  Provided for ablation of
    the loss form, not used by default.
    """
    diff = pos_scores.sigmoid() - neg_scores.sigmoid()
    return -((diff.relu() + eps).log()).mean()


def bce_loss(scores: Tensor, labels: Tensor) -> Tensor:
    """Binary cross-entropy on raw scores (logits), numerically stable.

    ``mean( softplus(s) - s*y )`` == ``-mean( y log p + (1-y) log(1-p) )``.
    """
    if scores.shape != labels.shape:
        raise ValueError(f"score/label shapes differ: {scores.shape} vs {labels.shape}")
    return (scores.softplus() - scores * labels).mean()


def l2_regularization(params: Iterable[Parameter], weight: float) -> Tensor:
    """``weight * sum ||p||^2`` over the given parameters.

    In recommender practice this is applied to the embeddings *used in the
    batch*; the trainer passes batch embeddings rather than full tables when
    following that convention.
    """
    params = list(params)
    if not params:
        raise ValueError("l2_regularization needs at least one parameter")
    total = (params[0] * params[0]).sum()
    for param in params[1:]:
        total = total + (param * param).sum()
    return total * weight


def l2_on_batch(embeddings: Iterable[Tensor], weight: float, batch_size: int) -> Tensor:
    """L2 penalty over batch embedding slices, averaged per example."""
    embeddings = list(embeddings)
    if not embeddings:
        raise ValueError("l2_on_batch needs at least one tensor")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    total = (embeddings[0] * embeddings[0]).sum()
    for emb in embeddings[1:]:
        total = total + (emb * emb).sum()
    return total * (weight / batch_size)


def fused_l2_on_batch(embeddings: Iterable[Tensor], weight: float, batch_size: int) -> Tensor:
    """Fused form of :func:`l2_on_batch`: one node over all embedding slices.

    Forward is a flat ``sum(e·e)`` accumulated in float64 (the reduction is
    the numerically delicate part); backward adds ``2·(weight/batch)·e`` to
    each slice with no intermediate squared arrays.
    """
    embeddings = list(embeddings)
    if not embeddings:
        raise ValueError("fused_l2_on_batch needs at least one tensor")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    scale = weight / batch_size
    total = 0.0
    for emb in embeddings:
        flat = emb.data.reshape(-1)
        total += float(np.dot(flat, flat))
    out_data = np.asarray(total * scale, dtype=embeddings[0].data.dtype)
    requires = any(e.requires_grad for e in embeddings)
    track = requires or any(e._parents for e in embeddings)

    def _backward(grad: np.ndarray) -> None:
        for emb in embeddings:
            if emb.requires_grad or emb._parents:
                emb._accumulate_any((2.0 * scale * grad) * emb.data)

    if not track:
        return Tensor(out_data)
    return Tensor(
        out_data, requires_grad=requires, parents=tuple(embeddings), backward_fn=_backward
    )
