"""Loss functions: BPR pairwise ranking loss, BCE, and L2 regularization.

The paper (Eq. 4) trains all models with Bayesian Personalized Ranking:

    L = sum_{(u,i,j)} -ln( sigma(s(u,i)) - sigma(s(u,j)) ) + lambda * ||Theta||^2

Note the unusual form: the sigmoid is applied to each score *before* the
difference.  The de-facto standard BPR is ``-ln sigma(s_i - s_j)``
(softplus of the negative margin).  We implement the standard, numerically
stable form as :func:`bpr_loss` (what the reference PUP code uses) and keep
the literal Eq. 4 as :func:`bpr_loss_paper_eq4` for fidelity experiments.
"""

from __future__ import annotations

from typing import Iterable

from .module import Parameter
from .tensor import Tensor


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Standard BPR: mean softplus(neg - pos).

    Equivalent to ``-mean(log sigma(pos - neg))`` but computed with
    ``log(1+exp(x))`` for stability at large margins.
    """
    if pos_scores.shape != neg_scores.shape:
        raise ValueError(
            f"positive/negative score shapes differ: {pos_scores.shape} vs {neg_scores.shape}"
        )
    margin = neg_scores - pos_scores
    return margin.softplus().mean()


def bpr_loss_paper_eq4(pos_scores: Tensor, neg_scores: Tensor, eps: float = 1e-8) -> Tensor:
    """The literal Eq. 4 loss: ``-ln( sigma(s_pos) - sigma(s_neg) )``.

    Only defined when ``sigma(s_pos) > sigma(s_neg)``; we clamp the argument
    by ``eps`` through a softplus-free formulation.  Provided for ablation of
    the loss form, not used by default.
    """
    diff = pos_scores.sigmoid() - neg_scores.sigmoid()
    return -((diff.relu() + eps).log()).mean()


def bce_loss(scores: Tensor, labels: Tensor) -> Tensor:
    """Binary cross-entropy on raw scores (logits), numerically stable.

    ``mean( softplus(s) - s*y )`` == ``-mean( y log p + (1-y) log(1-p) )``.
    """
    if scores.shape != labels.shape:
        raise ValueError(f"score/label shapes differ: {scores.shape} vs {labels.shape}")
    return (scores.softplus() - scores * labels).mean()


def l2_regularization(params: Iterable[Parameter], weight: float) -> Tensor:
    """``weight * sum ||p||^2`` over the given parameters.

    In recommender practice this is applied to the embeddings *used in the
    batch*; the trainer passes batch embeddings rather than full tables when
    following that convention.
    """
    params = list(params)
    if not params:
        raise ValueError("l2_regularization needs at least one parameter")
    total = (params[0] * params[0]).sum()
    for param in params[1:]:
        total = total + (param * param).sum()
    return total * weight


def l2_on_batch(embeddings: Iterable[Tensor], weight: float, batch_size: int) -> Tensor:
    """L2 penalty over batch embedding slices, averaged per example."""
    embeddings = list(embeddings)
    if not embeddings:
        raise ValueError("l2_on_batch needs at least one tensor")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    total = (embeddings[0] * embeddings[0]).sum()
    for emb in embeddings[1:]:
        total = total + (emb * emb).sum()
    return total * (weight / batch_size)
