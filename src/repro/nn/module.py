"""Module/Parameter abstractions mirroring the familiar torch.nn API surface.

A :class:`Parameter` is just a Tensor with ``requires_grad=True``; a
:class:`Module` collects parameters (and sub-modules) so that trainers and
optimizers can iterate them generically.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor. Always has ``requires_grad=True``."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` discovers them recursively.  ``training``
    toggles dropout and other train-only behaviour.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for attr, value in vars(self).items():
            full = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, element in enumerate(value):
                    if isinstance(element, Parameter):
                        yield f"{full}.{index}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{full}.{index}.")
            elif isinstance(value, dict):
                for key, element in value.items():
                    if isinstance(element, Parameter):
                        yield f"{full}.{key}", element
                    elif isinstance(element, Module):
                        yield from element.named_parameters(prefix=f"{full}.{key}.")

    def parameters(self) -> list:
        """All trainable parameters, depth-first and deduplicated."""
        seen: set[int] = set()
        result = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                result.append(param)
        return result

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        """Switch to training mode (enables dropout) recursively."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode recursively."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Module):
                        element._set_mode(training)
            elif isinstance(value, dict):
                for element in value.values():
                    if isinstance(element, Module):
                        element._set_mode(training)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Values are cast to each parameter's own dtype, so a float64
        checkpoint loads into a float32 model (and vice versa) — the model's
        precision policy, fixed at construction, wins.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = np.array(value, dtype=param.data.dtype)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.size for param in self.parameters())
