"""A small reverse-mode automatic differentiation engine on NumPy arrays.

This module is the computational substrate for the whole reproduction: the
paper implements its models in PyTorch, which is not available offline, so we
provide an equivalent (scalar-loss, reverse-mode) autograd ``Tensor``.

Design notes
------------
* A :class:`Tensor` wraps an ``np.ndarray`` (``float32`` or ``float64``,
  governed by the precision policy in :mod:`repro.nn.precision`), an optional
  gradient buffer, and a closure that propagates gradients to its parents.
  Ops derive their output dtype from their operands and scalar constants are
  coerced to the tensor's own dtype, so a graph built under one policy stays
  in that precision end to end.
* ``backward()`` runs a topological sort over the recorded graph and calls the
  per-node backward closures in reverse order, exactly like a micro-grad style
  engine but with full ndarray broadcasting support.
* Broadcasting is undone in the backward pass by :func:`unbroadcast`, which
  sums gradients over broadcast dimensions.
* Sparse support: :meth:`Tensor.sparse_matmul` multiplies a *constant*
  ``scipy.sparse`` matrix with a dense tensor.  The graph adjacency matrix in
  GCNs is constant, so gradients only flow to the dense operand — this is all
  the paper's encoder needs, and it keeps the engine simple.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from .precision import SUPPORTED_DTYPES, default_dtype, resolve_dtype

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce input to a float ndarray without copying when possible.

    With ``dtype=None``, arrays already in a supported precision keep it
    (so float32 checkpoints stay float32); everything else is coerced to the
    policy default.
    """
    if dtype is not None:
        dtype = resolve_dtype(dtype)
        if isinstance(value, np.ndarray) and value.dtype == dtype:
            return value
        return np.asarray(value, dtype=dtype)
    if isinstance(value, np.ndarray):
        if value.dtype in SUPPORTED_DTYPES:
            return value
        return value.astype(default_dtype())
    if isinstance(value, np.generic) and value.dtype in SUPPORTED_DTYPES:
        # 0-d results of reductions (e.g. float32 .sum()) keep their precision.
        return np.asarray(value)
    return np.asarray(value, dtype=default_dtype())


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Used by binary-op backward passes: if ``a + b`` broadcast ``b`` up to the
    result shape, the gradient flowing back to ``b`` must be summed over the
    broadcast axes so that ``b.grad.shape == b.shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with reverse-mode autograd.

    Parameters
    ----------
    data:
        The wrapped array (coerced to float64).
    requires_grad:
        Whether gradients should be accumulated into ``.grad``.
    parents:
        Graph edges used for the topological sort (internal).
    backward_fn:
        Closure receiving the upstream gradient, responsible for accumulating
        into each parent's ``.grad`` (internal).
    name:
        Optional debugging label.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Iterable["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
        dtype=None,
    ) -> None:
        self.data = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a 0-d/1-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """A detached copy cast to ``dtype`` (no gradient flow)."""
        return Tensor(self.data.astype(resolve_dtype(dtype)), requires_grad=False)

    # ------------------------------------------------------------------
    # Gradient bookkeeping
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        self._accumulate_any(grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones, which is only sensible for scalar losses —
        a ValueError is raised for non-scalar tensors without an explicit seed.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.shape}"
                )

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS post-order: avoids recursion limits on deep graphs.
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate_or_seed(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def _accumulate_or_seed(self, grad: np.ndarray) -> None:
        # The root of backward() always needs a grad buffer even when it is an
        # intermediate node (requires_grad may be False on pure outputs).
        self._accumulate_any(grad)

    # ------------------------------------------------------------------
    # Binary arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other: ArrayLike, forward, backward_self, backward_other) -> "Tensor":
        # Non-tensor operands adopt this tensor's dtype so scalar constants
        # never promote a float32 graph to float64.
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        out_data = forward(self.data, other_t.data)
        requires = self.requires_grad or other_t.requires_grad
        track = requires or self._parents or other_t._parents

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                self._accumulate_any(unbroadcast(backward_self(grad, self.data, other_t.data), self.shape))
            if other_t.requires_grad or other_t._parents:
                other_t._accumulate_any(unbroadcast(backward_other(grad, self.data, other_t.data), other_t.shape))

        if not track:
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=requires, parents=(self, other_t), backward_fn=_backward)

    def _accumulate_any(self, grad: np.ndarray) -> None:
        """Accumulate gradient whether this is a leaf or an interior node.

        The first contribution is a single-pass copy (not zeros + add): the
        incoming array may be shared between parents or be a broadcast view,
        so it must not be adopted in place.
        """
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad += grad

    def __add__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a + b,
            lambda g, a, b: g,
            lambda g, a, b: g,
        )

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a - b,
            lambda g, a, b: g,
            lambda g, a, b: -g,
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a * b,
            lambda g, a, b: g * b,
            lambda g, a, b: g * a,
        )

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            lambda a, b: a / b,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self.__mul__(-1.0)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        out_data = self.data**exponent

        def _backward(grad: np.ndarray) -> None:
            self._accumulate_any(grad * exponent * self.data ** (exponent - 1.0))

        if not (self.requires_grad or self._parents):
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=self.requires_grad, parents=(self,), backward_fn=_backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Dense matrix multiply with gradients to both operands."""
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        out_data = self.data @ other_t.data
        requires = self.requires_grad or other_t.requires_grad
        track = requires or self._parents or other_t._parents

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                if other_t.data.ndim == 1:
                    self._accumulate_any(np.outer(grad, other_t.data) if grad.ndim else grad * other_t.data)
                else:
                    self._accumulate_any(grad @ other_t.data.T)
            if other_t.requires_grad or other_t._parents:
                if self.data.ndim == 1:
                    other_t._accumulate_any(np.outer(self.data, grad))
                else:
                    other_t._accumulate_any(self.data.T @ grad)

        if not track:
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=requires, parents=(self, other_t), backward_fn=_backward)

    def sparse_matmul(self, matrix: sp.spmatrix, transpose: Optional[sp.spmatrix] = None) -> "Tensor":
        """Compute ``matrix @ self`` for a constant sparse ``matrix``.

        The sparse operand (a graph adjacency) receives no gradient; the
        gradient w.r.t. the dense operand is ``matrix.T @ grad``.  Callers on
        a hot path (GCN encoders) pass the precomputed ``transpose`` so it is
        not rebuilt on every forward; otherwise it is derived lazily when the
        backward pass first needs it.
        """
        if not sp.issparse(matrix):
            raise TypeError(f"expected a scipy sparse matrix, got {type(matrix)!r}")
        csr = matrix.tocsr()
        if csr.dtype != self.data.dtype:
            csr = csr.astype(self.data.dtype)
        out_data = csr @ self.data

        if not (self.requires_grad or self._parents):
            return Tensor(out_data)

        if transpose is not None and not sp.issparse(transpose):
            raise TypeError(f"expected a sparse transpose, got {type(transpose)!r}")
        cached = [transpose]

        def _backward(grad: np.ndarray) -> None:
            if cached[0] is None:
                cached[0] = csr.T.tocsr()
            t = cached[0]
            if t.dtype != grad.dtype:
                t = t.astype(grad.dtype)
            self._accumulate_any(t @ grad)

        return Tensor(out_data, requires_grad=self.requires_grad, parents=(self,), backward_fn=_backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def _unary(self, forward, backward) -> "Tensor":
        out_data = forward(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate_any(backward(grad, self.data, out_data))

        if not (self.requires_grad or self._parents):
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=self.requires_grad, parents=(self,), backward_fn=_backward)

    def tanh(self) -> "Tensor":
        return self._unary(np.tanh, lambda g, x, y: g * (1.0 - y * y))

    def sigmoid(self) -> "Tensor":
        def _sig(x: np.ndarray) -> np.ndarray:
            # Numerically stable split on sign.
            out = np.empty_like(x)
            pos = x >= 0
            out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
            ex = np.exp(x[~pos])
            out[~pos] = ex / (1.0 + ex)
            return out

        return self._unary(_sig, lambda g, x, y: g * y * (1.0 - y))

    def relu(self) -> "Tensor":
        return self._unary(
            lambda x: np.maximum(x, 0.0),
            lambda g, x, y: g * (x > 0.0),
        )

    def exp(self) -> "Tensor":
        return self._unary(np.exp, lambda g, x, y: g * y)

    def log(self) -> "Tensor":
        return self._unary(np.log, lambda g, x, y: g / x)

    def sqrt(self) -> "Tensor":
        return self._unary(np.sqrt, lambda g, x, y: g * 0.5 / y)

    def softplus(self) -> "Tensor":
        """log(1 + exp(x)) computed stably; used by the BPR loss."""
        return self._unary(
            lambda x: np.logaddexp(0.0, x),
            lambda g, x, y: g * _stable_sigmoid(x),
        )

    # ------------------------------------------------------------------
    # Reductions and shaping
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, tuple]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def _backward(grad: np.ndarray) -> None:
            # _accumulate_any copies on first touch, so broadcast views are safe.
            if axis is None:
                self._accumulate_any(np.broadcast_to(grad, self.shape))
            else:
                g = grad
                if not keepdims:
                    g = np.expand_dims(g, axis=axis)
                self._accumulate_any(np.broadcast_to(g, self.shape))

        if not (self.requires_grad or self._parents):
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=self.requires_grad, parents=(self,), backward_fn=_backward)

    def mean(self, axis: Optional[Union[int, tuple]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def _backward(grad: np.ndarray) -> None:
            self._accumulate_any(grad.reshape(original))

        if not (self.requires_grad or self._parents):
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=self.requires_grad, parents=(self,), backward_fn=_backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def _backward(grad: np.ndarray) -> None:
            self._accumulate_any(grad.T)

        if not (self.requires_grad or self._parents):
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=self.requires_grad, parents=(self,), backward_fn=_backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mirrors numpy's .T
        return self.transpose()

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows by integer index (embedding lookup).

        Backward scatters gradients with ``np.add.at``, so repeated indices
        accumulate correctly — essential for mini-batches sharing users.
        """
        idx = np.asarray(indices, dtype=np.int64)
        out_data = self.data[idx]

        def _backward(grad: np.ndarray) -> None:
            # Scatter straight into the grad buffer: allocating a full-table
            # temporary and adding it afterwards would double the memory
            # traffic of the most frequent backward op in the stack.
            if self.grad is None:
                self.grad = np.zeros_like(self.data)
            np.add.at(self.grad, idx, grad)

        if not (self.requires_grad or self._parents):
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=self.requires_grad, parents=(self,), backward_fn=_backward)

    def slice_cols(self, start: int, stop: int) -> "Tensor":
        """Column slice [start:stop) with gradient routing back to the slice."""
        out_data = self.data[:, start:stop]

        def _backward(grad: np.ndarray) -> None:
            if self.grad is None:
                self.grad = np.zeros_like(self.data)
            self.grad[:, start:stop] += grad

        if not (self.requires_grad or self._parents):
            return Tensor(out_data)
        return Tensor(out_data, requires_grad=self.requires_grad, parents=(self,), backward_fn=_backward)

    def dropout(self, rate: float, rng: np.random.Generator, training: bool = True) -> "Tensor":
        """Inverted dropout on features. Identity when not training or rate==0."""
        if not training or rate <= 0.0:
            return self
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        keep = 1.0 - rate
        # Draw uniforms natively in the tensor's dtype (float32 draws are
        # half the memory traffic); the keep-mask math runs in place.
        if self.data.dtype == np.float32:
            rand = rng.random(self.shape, dtype=np.float32)
        else:
            rand = rng.random(self.shape)
        mask = (rand < keep).astype(self.data.dtype)
        mask /= keep
        return self * Tensor(mask, dtype=self.data.dtype)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient splitting."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat() requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    requires = any(t.requires_grad for t in tensors)
    track = requires or any(t._parents for t in tensors)

    def _backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad or tensor._parents:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate_any(grad[tuple(slicer)])

    if not track:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=requires, parents=tuple(tensors), backward_fn=_backward)


def stack_sum(tensors: Sequence[Tensor]) -> Tensor:
    """Elementwise sum of same-shaped tensors (`a + b + c` without chaining)."""
    result = tensors[0]
    for tensor in tensors[1:]:
        result = result + tensor
    return result
