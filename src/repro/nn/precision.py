"""The compute-precision policy threaded through the whole stack.

Every array the substrate creates — embedding tables, layer weights,
optimizer moments, activations, gradients, frozen serving factors — follows
one *default dtype*.  Historically the stack was hardwired to ``float64``;
that stays the default, but the whole train → export → serve path also runs
in ``float32`` at roughly half the memory traffic, which is where most of
the training-throughput win on CPU BLAS/sparse kernels comes from (see
``docs/performance.md`` for measured numbers and metric-parity guarantees).

Note the dtype *policy* default is unchanged, but default training numerics
are not frozen across releases: the trainer's fused kernels
(``TrainConfig.fused_kernels``, on by default) compute the same losses with
a different operation order, so float64 trajectories match earlier releases
only to round-off.  Set ``fused_kernels=False`` for the composed ops.

Usage::

    from repro.nn import precision, set_default_dtype

    with precision("float32"):          # scoped: build + train + export
        model = build_model("pup", dataset, seed=0)
        train_model(model, dataset, config)

    set_default_dtype("float32")        # or for the rest of the thread

The policy is **per-thread** (``threading.local``), so concurrent
experiment sweeps can run different precisions without racing each other;
a freshly spawned worker thread starts at the float64 default and must set
its own policy.

Rules of the policy
-------------------
* New tensors created from Python scalars/lists adopt the default dtype.
* NumPy arrays that are already ``float32``/``float64`` keep their dtype —
  a checkpoint trained in one precision loads faithfully regardless of the
  active default.
* Ops derive their output dtype from their operands (scalar constants are
  coerced to the tensor's own dtype), so a graph stays in one precision
  end to end instead of silently promoting to ``float64``.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

#: the dtypes the policy accepts — everything else is coerced to the default
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_state = threading.local()


def resolve_dtype(dtype: Optional[DTypeLike]) -> np.dtype:
    """Canonicalize ``dtype`` (``None`` means the active default)."""
    if dtype is None:
        return default_dtype()
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(f"unsupported precision {resolved.name!r}; use one of: {supported}")
    return resolved


def default_dtype() -> np.dtype:
    """The dtype new tensors/parameters are created with."""
    return getattr(_state, "dtype", np.dtype(np.float64))


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the calling thread's default dtype; returns it.

    Per-thread on purpose: parallel sweeps may train different precisions
    concurrently.  New threads start at float64.
    """
    resolved = resolve_dtype(dtype)
    _state.dtype = resolved
    return resolved


class precision:
    """Context manager scoping the default dtype::

        with precision("float32"):
            model = PUP(dataset)        # float32 parameters
    """

    def __init__(self, dtype: DTypeLike) -> None:
        self._dtype = resolve_dtype(dtype)
        self._saved: Optional[np.dtype] = None

    def __enter__(self) -> np.dtype:
        self._saved = default_dtype()
        _state.dtype = self._dtype
        return self._dtype

    def __exit__(self, *exc_info) -> None:
        _state.dtype = self._saved
