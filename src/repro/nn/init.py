"""Weight-initialization schemes.

All initializers take an explicit ``np.random.Generator`` so every experiment
in the repo is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np


def normal(rng: np.random.Generator, shape: tuple, std: float = 0.01) -> np.ndarray:
    """Gaussian init — the common choice for recommender embeddings."""
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: tuple) -> np.ndarray:
    """Glorot/Xavier uniform init for dense layers (as used by NGCF/GC-MC)."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(rng: np.random.Generator, shape: tuple) -> np.ndarray:
    """Glorot/Xavier normal init."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[0], shape[1]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape)
