"""Weight-initialization schemes.

All initializers take an explicit ``np.random.Generator`` so every experiment
in the repo is reproducible from a single seed.  Draws are always made in
float64 (so a given seed produces the same weights regardless of precision)
and then cast to the requested ``dtype`` — the active policy default from
:mod:`repro.nn.precision` when omitted.
"""

from __future__ import annotations

import numpy as np

from .precision import resolve_dtype


def normal(rng: np.random.Generator, shape: tuple, std: float = 0.01, dtype=None) -> np.ndarray:
    """Gaussian init — the common choice for recommender embeddings."""
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def xavier_uniform(rng: np.random.Generator, shape: tuple, dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform init for dense layers (as used by NGCF/GC-MC)."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(resolve_dtype(dtype), copy=False)


def xavier_normal(rng: np.random.Generator, shape: tuple, dtype=None) -> np.ndarray:
    """Glorot/Xavier normal init."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[0], shape[1]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def zeros(shape: tuple, dtype=None) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape, dtype=resolve_dtype(dtype))
