"""The versioned experiment artifact directory and its in-memory handle.

One :func:`repro.experiments.run` call materializes as a directory:

======================  ==================================================
``spec.json``           format version + the full :class:`ExperimentSpec`
``checkpoint.npz``      model parameters (:mod:`repro.train.persistence`)
``index.npz``           frozen :class:`~repro.serving.EmbeddingIndex`
                        (absent for non-factorizable models, e.g. DeepFM)
``metrics.json``        eval metrics + training summary (validation-off runs
                        serialize ``best_metric``/``best_epoch`` as null)
``loss_curve.json``     per-epoch losses + validation history
``observability.json``  :meth:`repro.obs.MetricsRegistry.to_json` snapshot
                        of the run (train + eval phase counters)
======================  ==================================================

:class:`Experiment` is the live handle over those pieces — the trained
model, its dataset, metrics, and the serving index — whether it came fresh
out of a run or was rehydrated with :meth:`Experiment.load`.  Rehydration
is exact: the reloaded model serves the same top-K as the in-process model
did before saving.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, Optional, Sequence

import numpy as np

from ..eval.ranking import topk_rankings
from ..serving.export import ExportError, export_index
from ..serving.index import EmbeddingIndex
from ..serving.service import RecommenderService
from ..train.persistence import clean_stale_archives, load_checkpoint, save_checkpoint
from ..train.trainer import TrainResult
from .spec import ExperimentSpec

SPEC_FILENAME = "spec.json"
CHECKPOINT_FILENAME = "checkpoint.npz"
INDEX_FILENAME = "index.npz"
ANN_FILENAME = "ann.npz"
#: dir-format ANN archive (mmap-able; required for tiered loading)
ANN_DIRNAME = "ann"
METRICS_FILENAME = "metrics.json"
LOSS_CURVE_FILENAME = "loss_curve.json"
OBS_FILENAME = "observability.json"

#: bump when the directory layout changes incompatibly
ARTIFACT_FORMAT_VERSION = 1


def _write_json(path: str, payload: Dict) -> str:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _read_json(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


class Experiment:
    """A spec plus everything it produced: model, metrics, serving index."""

    def __init__(
        self,
        spec: ExperimentSpec,
        dataset,
        model,
        train_result: Optional[TrainResult] = None,
        metrics: Optional[Dict[str, float]] = None,
        index: Optional[EmbeddingIndex] = None,
        artifacts_dir: Optional[str] = None,
        eval_profile: Optional[Dict] = None,
        obs_snapshot: Optional[Dict] = None,
    ) -> None:
        self.spec = spec
        self.dataset = dataset
        self.model = model
        self.train_result = train_result
        self.metrics = dict(metrics or {})
        self._index = index
        self.artifacts_dir = artifacts_dir
        #: profiler summary of the evaluation pass (score/topk/merge/metrics
        #: phases); persisted in metrics.json next to the training profile
        self.eval_profile = eval_profile
        #: full :meth:`repro.obs.MetricsRegistry.to_json` snapshot of the
        #: run's registry (train + eval phase counters); persisted as
        #: ``observability.json``
        self.obs_snapshot = obs_snapshot

    # ------------------------------------------------------------------
    # Serving surface
    # ------------------------------------------------------------------
    @property
    def index(self) -> EmbeddingIndex:
        """The frozen serving index; exported on first access if needed."""
        return self.export()

    def export(self, force: bool = False) -> EmbeddingIndex:
        """(Re)freeze the serving index from the live model.

        ``force=True`` re-runs the export even when an index is already in
        hand (e.g. one loaded from disk that may predate the checkpoint).
        """
        if force or self._index is None:
            self._index = export_index(
                self.model, self.dataset, extra={"experiment": self.spec.to_dict()}
            )
        return self._index

    def service(self, **kwargs) -> RecommenderService:
        """A ready :class:`RecommenderService` over this experiment's index."""
        return RecommenderService(self.index, **kwargs)

    def ann_index(
        self,
        n_lists: Optional[int] = None,
        nprobe: Optional[int] = None,
        seed: int = 0,
        quantize: bool = True,
        kind: Optional[str] = None,
        pq_subspace_dim: int = 4,
        pq_rotation: bool = False,
        memory_ceiling_bytes: Optional[int] = None,
        hot_fraction: Optional[float] = None,
        train_sample: Optional[int] = None,
    ):
        """The experiment's ANN index: saved structure if present, else built.

        A saved artifact (``ann/`` dir archive or ``ann.npz``, written by
        ``repro export --ann``/``--ann-kind``) is re-attached to the
        experiment's embedding index; otherwise an index of the requested
        ``kind`` (``ivf`` — the default, ``ivf-pq``, ``pq``) is built
        fresh.  Explicit arguments always win over the saved artifact: a
        requested ``nprobe`` overrides the stored default operating point
        in place, and a requested ``n_lists`` or ``kind`` that disagrees
        with the saved layout triggers a fresh build (both are baked into
        the build; silently serving the old one would ignore the request).

        ``memory_ceiling_bytes`` / ``hot_fraction`` select the **tiered**
        loader: the saved dir archive must carry the permuted item payload
        (``repro export --ann-kind ... --memory-ceiling``), which is then
        mmap-opened with only the hottest lists resident.
        """
        from ..serving.ann import (  # deferred: keeps import light
            IVFIndex,
            PQIndex,
            TieredIndexConfig,
            TieredIVFIndex,
            build_ivf,
            build_pq,
        )
        from ..serving.ann.ivf import IVF_KIND
        from ..serving.ann.pq import PQ_KIND
        from ..train import persistence

        if kind is not None and kind not in ("ivf", "ivf-pq", "pq"):
            raise ValueError(f"kind must be 'ivf', 'ivf-pq' or 'pq', got {kind!r}")
        tiered = memory_ceiling_bytes is not None or hot_fraction is not None
        config = (
            TieredIndexConfig(
                hot_fraction=hot_fraction, memory_ceiling_bytes=memory_ceiling_bytes
            )
            if tiered
            else None
        )

        if self.artifacts_dir is not None:
            for name in (ANN_DIRNAME, ANN_FILENAME):
                path = os.path.join(self.artifacts_dir, name)
                if not os.path.exists(path):
                    continue
                metadata = persistence.read_archive_metadata(path)
                archive_kind = persistence.archive_kind(metadata)
                if archive_kind == PQ_KIND:
                    if kind not in (None, "pq") or tiered:
                        continue  # a different kind was requested: rebuild
                    return PQIndex.load(path, self.index)
                if archive_kind != IVF_KIND:
                    continue
                saved_kind = "ivf-pq" if metadata.get("pq") is not None else "ivf"
                if kind is not None and kind != saved_kind:
                    continue
                if tiered:
                    if not metadata.get("include_items"):
                        continue  # payload-less archive cannot back a cold tier
                    saved = TieredIVFIndex.load(path, self.index, config)
                else:
                    saved = IVFIndex.load(path, self.index)
                if n_lists is None or int(n_lists) == saved.n_lists:
                    if nprobe is not None:
                        saved.nprobe = max(1, min(int(nprobe), saved.n_lists))
                    return saved

        if kind == "pq":
            return build_pq(
                self.index,
                subspace_dim=pq_subspace_dim,
                rotation=pq_rotation,
                seed=seed,
                train_sample=train_sample,
            )
        ann = build_ivf(
            self.index,
            n_lists=n_lists,
            nprobe=nprobe,
            seed=seed,
            quantize=quantize,
            pq=(kind == "ivf-pq"),
            pq_subspace_dim=pq_subspace_dim,
            pq_rotation=pq_rotation,
            train_sample=train_sample,
        )
        if not tiered:
            return ann
        # Tiered serving needs a dir archive to page from: stage one next
        # to the other artifacts and reopen it mmap-backed.
        if self.artifacts_dir is None:
            raise ValueError(
                "tiered ANN loading needs an artifacts directory to stage "
                "the mmap archive in (save the experiment first, or use "
                "`repro export --ann-kind ... --memory-ceiling`)"
            )
        path = os.path.join(self.artifacts_dir, ANN_DIRNAME)
        ann.save(path, format="dir", include_items=True)
        return TieredIVFIndex.load(path, self.index, config)

    def topk(
        self, users: Sequence[int], k: int = 10, exclude_train: bool = True,
        workers: int = 0, shards: int = 1,
    ) -> Dict[int, np.ndarray]:
        """Offline top-K rankings from the live model (evaluator semantics)."""
        return topk_rankings(
            self.model, self.dataset, users, k=k, exclude_train=exclude_train,
            workers=workers, shards=shards,
        )

    def evaluate(
        self, ks: Optional[Sequence[int]] = None, split: Optional[str] = None,
        workers: int = 0, shards: int = 1, profiler=None, tracer=None,
    ):
        """Re-run the spec's eval protocol (optionally overriding ks/split).

        ``workers`` / ``shards`` parallelize the pass without changing any
        result bit (see :mod:`repro.runtime`); ``profiler`` / ``tracer``
        observe it without changing any result bit either.
        """
        protocol = self.spec.eval
        if ks is not None or split is not None:
            protocol = type(protocol)(
                split=split or protocol.split,
                ks=tuple(ks) if ks is not None else protocol.ks,
                exclude_train=protocol.exclude_train,
            )
        return protocol.run(
            self.model, self.dataset, workers=workers, shards=shards,
            profiler=profiler, tracer=tracer,
        )

    # ------------------------------------------------------------------
    # Artifact store
    # ------------------------------------------------------------------
    def save(self, artifacts_dir: str) -> str:
        """Write the full artifact directory; returns its path."""
        from .. import __version__  # deferred: repro/__init__ imports this package

        os.makedirs(artifacts_dir, exist_ok=True)
        _write_json(
            os.path.join(artifacts_dir, SPEC_FILENAME),
            {
                "format_version": ARTIFACT_FORMAT_VERSION,
                "repro_version": __version__,
                "experiment": self.spec.to_dict(),
            },
        )
        save_checkpoint(
            self.model,
            os.path.join(artifacts_dir, CHECKPOINT_FILENAME),
            extra={"experiment": self.spec.name, "model": self.spec.model.to_dict()},
        )

        index_file = None
        if self.spec.export:
            try:
                index = self.index
            except ExportError as error:
                warnings.warn(
                    f"[{self.spec.name}] serving index skipped: {error}", stacklevel=2
                )
            else:
                index.save(os.path.join(artifacts_dir, INDEX_FILENAME))
                index_file = INDEX_FILENAME

        train_summary = None
        if self.train_result is not None:
            curves = self.train_result.to_dict()
            train_summary = {
                key: value
                for key, value in curves.items()
                if key not in ("epoch_losses", "validation_history")
            }
            _write_json(
                os.path.join(artifacts_dir, LOSS_CURVE_FILENAME),
                {
                    "epoch_losses": curves["epoch_losses"],
                    "validation_history": curves["validation_history"],
                },
            )
        _write_json(
            os.path.join(artifacts_dir, METRICS_FILENAME),
            {
                "metrics": self.metrics,
                "train": train_summary,
                "eval": self.spec.eval.to_dict(),
                "eval_profile": self.eval_profile,
                "index": index_file,
            },
        )
        if self.obs_snapshot is not None:
            _write_json(os.path.join(artifacts_dir, OBS_FILENAME), self.obs_snapshot)
        self.artifacts_dir = artifacts_dir
        return artifacts_dir

    @classmethod
    def load(cls, artifacts_dir: str) -> "Experiment":
        """Rehydrate a saved experiment into a serving-ready handle.

        The dataset is rebuilt from its spec (synthetic generation is
        deterministic), the model is reconstructed through the registry and
        restored from the checkpoint, and the saved index is loaded if
        present (otherwise it is re-exported lazily on first use).
        """
        spec_path = os.path.join(artifacts_dir, SPEC_FILENAME)
        if not os.path.exists(spec_path):
            raise FileNotFoundError(
                f"{artifacts_dir!r} is not an experiment artifact directory "
                f"(missing {SPEC_FILENAME})"
            )
        # Sweep staging leftovers from writers that died mid-publish: every
        # archive write stages to a `*.tmp-<pid>` sibling and renames, so
        # anything still matching the staging pattern is garbage by definition.
        removed = clean_stale_archives(artifacts_dir)
        for stale in removed:
            warnings.warn(
                f"removed stale staging file from an interrupted write: {stale}",
                RuntimeWarning,
                stacklevel=2,
            )
        payload = _read_json(spec_path)
        version = payload.get("format_version", 1)
        if version > ARTIFACT_FORMAT_VERSION:
            raise ValueError(
                f"artifact format v{version} is newer than this reader "
                f"(v{ARTIFACT_FORMAT_VERSION})"
            )
        spec = ExperimentSpec.from_dict(payload["experiment"])

        from ..nn import precision  # deferred: keeps this module import-light

        dataset, _truth = spec.dataset.load()
        # Rebuild in the recorded precision: a float32 experiment must come
        # back as a float32 model, or live scores would drift from the saved
        # float32 index.
        with precision(spec.precision):
            model = spec.model.build(dataset)
        load_checkpoint(model, os.path.join(artifacts_dir, CHECKPOINT_FILENAME))
        model.eval()

        metrics: Dict[str, float] = {}
        train_result = None
        eval_profile = None
        metrics_path = os.path.join(artifacts_dir, METRICS_FILENAME)
        if os.path.exists(metrics_path):
            stored = _read_json(metrics_path)
            metrics = stored.get("metrics") or {}
            eval_profile = stored.get("eval_profile")
            curves_path = os.path.join(artifacts_dir, LOSS_CURVE_FILENAME)
            curves = _read_json(curves_path) if os.path.exists(curves_path) else {}
            if stored.get("train") is not None or curves:
                train_result = TrainResult.from_dict({**(stored.get("train") or {}), **curves})

        obs_path = os.path.join(artifacts_dir, OBS_FILENAME)
        obs_snapshot = _read_json(obs_path) if os.path.exists(obs_path) else None

        index_path = os.path.join(artifacts_dir, INDEX_FILENAME)
        index = EmbeddingIndex.load(index_path) if os.path.exists(index_path) else None
        return cls(
            spec,
            dataset,
            model,
            train_result=train_result,
            metrics=metrics,
            index=index,
            artifacts_dir=artifacts_dir,
            eval_profile=eval_profile,
            obs_snapshot=obs_snapshot,
        )
