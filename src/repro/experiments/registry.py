"""Named model registry — the model-side twin of :mod:`repro.data.registry`.

Every recommender in the repo registers a factory under a canonical slug
(``pup``, ``bpr-mf``, ...) via the :func:`register_model` decorator, placed
directly on the PUP variant constructors (:mod:`repro.core.variants`) and on
the baseline classes (:mod:`repro.baselines`).  Everything downstream —
benchmarks, examples, the ``python -m repro`` CLI, and
:class:`~repro.experiments.spec.ExperimentSpec` — builds models through
:func:`build_model` instead of importing factories by hand.

Lookup is forgiving: names are case-insensitive, ``_``/``-`` are
interchangeable, and the paper's display names ("BPR-MF", "PUP w/ p") are
registered as aliases of the slugs.

A :class:`ModelSpec` captures one buildable model configuration — registry
name, JSON-safe hyper-parameters, and an init seed — and round-trips
through ``to_dict``/``from_dict``, which is what makes experiment specs and
artifact directories serializable.

This module is deliberately free of imports from the rest of the package so
model modules can import the decorator without creating a cycle.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

#: canonical name -> {"factory", "display", "aliases", "description"}
_MODELS: Dict[str, Dict[str, Any]] = {}
#: normalized alias -> canonical name
_ALIASES: Dict[str, str] = {}

#: Table II training-recipe hyper-parameters per model, in the paper's row
#: order — the single source of truth shared by ``benchmarks/_harness.py``,
#: ``examples/compare_baselines.py`` and the CLI ``compare`` subcommand.
PAPER_HPARAMS: Dict[str, Dict[str, Any]] = {
    "itempop": {},
    "bpr-mf": {"dim": 64},
    "padq": {"dim": 64, "price_weight": 8.0},
    "fm": {"dim": 64},
    "deepfm": {"dim": 32, "hidden": [64, 32]},
    "gcmc": {"dim": 64},
    "ngcf": {"dim": 64},
    "pup": {"global_dim": 56, "category_dim": 8},
}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_model(
    name: str, aliases: Tuple[str, ...] = (), display: Optional[str] = None
) -> Callable:
    """Class/function decorator adding a model factory to the registry."""

    def decorator(factory: Callable) -> Callable:
        canonical = _normalize(name)
        if canonical in _MODELS:
            raise ValueError(f"model {canonical!r} is already registered")
        doc = (inspect.getdoc(factory) or "").strip()
        _MODELS[canonical] = {
            "factory": factory,
            "display": display or getattr(factory, "name", None) or name,
            "aliases": tuple(aliases),
            "description": doc.splitlines()[0] if doc else "",
        }
        for alias in (name, *aliases):
            key = _normalize(alias)
            existing = _ALIASES.get(key)
            if existing is not None and existing != canonical:
                raise ValueError(f"alias {alias!r} already points at {existing!r}")
            _ALIASES[key] = canonical
        return factory

    return decorator


def available_models() -> List[str]:
    """Canonical names accepted by :func:`build_model`, sorted."""
    return sorted(_MODELS)


def model_info(name: str) -> Dict[str, Any]:
    """Registry entry (display name, aliases, description) for ``name``."""
    entry = _MODELS[resolve_model_name(name)]
    return {k: v for k, v in entry.items() if k != "factory"}


def model_display_name(name: str) -> str:
    """The paper's table label for a registered model ("BPR-MF", "PUP w/ p")."""
    return _MODELS[resolve_model_name(name)]["display"]


def resolve_model_name(name: str) -> str:
    """Canonical registry name for ``name`` (alias- and case-insensitive)."""
    canonical = _ALIASES.get(_normalize(name))
    if canonical is None:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()}"
        )
    return canonical


def build_model(name: str, dataset, seed: Optional[int] = None, **hparams):
    """Construct a registered model on ``dataset``.

    ``seed`` feeds the factory's ``rng`` argument (models without one, like
    ItemPop, simply ignore it).  The constructed model carries a
    ``model_spec`` attribute recording how to rebuild it — unless a live
    ``rng`` object was passed directly, which is not serializable.
    """
    canonical = resolve_model_name(name)
    factory = _MODELS[canonical]["factory"]
    kwargs = dict(hparams)
    parameters = inspect.signature(factory).parameters
    for key in hparams:
        if key not in parameters and not any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        ):
            raise TypeError(f"model {canonical!r} has no hyper-parameter {key!r}")
    if "rng" in parameters and "rng" not in kwargs and seed is not None:
        kwargs["rng"] = np.random.default_rng(seed)
    model = factory(dataset, **kwargs)
    model.model_spec = (
        None if "rng" in hparams else ModelSpec(canonical, hparams, seed=seed)
    )
    return model


def _jsonify(value: Any) -> Any:
    """Canonicalize to JSON-representable types so dict round-trips are exact."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"hyper-parameter value {value!r} is not JSON-serializable")


@dataclass
class ModelSpec:
    """One buildable model configuration: registry name + hparams + seed."""

    name: str
    hparams: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        self.name = resolve_model_name(self.name)
        self.hparams = _jsonify(dict(self.hparams))
        if self.seed is not None:
            self.seed = int(self.seed)

    def build(self, dataset):
        """Construct the model this spec describes."""
        return build_model(self.name, dataset, seed=self.seed, **self.hparams)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "hparams": dict(self.hparams), "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModelSpec":
        unknown = set(payload) - {"name", "hparams", "seed"}
        if unknown:
            raise ValueError(f"unknown ModelSpec fields: {sorted(unknown)}")
        return cls(
            name=payload["name"],
            hparams=dict(payload.get("hparams") or {}),
            seed=payload.get("seed"),
        )
