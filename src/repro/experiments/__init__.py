"""Unified experiment API: registry + declarative specs + artifact store.

The three pieces this package adds on top of the library layers:

* **model registry** (:mod:`repro.experiments.registry`) — the model-side
  twin of :func:`repro.data.load_dataset`: ``build_model("pup", dataset)``,
  :func:`available_models`, and a serializable :class:`ModelSpec`;
* **declarative pipeline** (:mod:`repro.experiments.spec` /
  :mod:`repro.experiments.runner`) — :class:`ExperimentSpec` names a
  dataset, a model, a :class:`~repro.train.TrainConfig` and an eval
  protocol; :func:`run` executes train → evaluate → export in one call;
* **artifact store** (:mod:`repro.experiments.artifacts`) — ``run`` writes
  a versioned directory (spec.json, checkpoint.npz, index.npz,
  metrics.json, loss_curve.json) that :meth:`Experiment.load` rehydrates
  into a serving-ready object.

Quickstart::

    from repro.experiments import ExperimentSpec, Experiment, run

    spec = ExperimentSpec.create(model="pup", dataset="yelp", epochs=20)
    experiment = run(spec, artifacts_dir="runs/pup_yelp")
    print(experiment.metrics)

    experiment = Experiment.load("runs/pup_yelp")   # later / elsewhere
    experiment.service().recommend(user=42)

The registry is imported eagerly (model modules register themselves
through it); spec/runner/artifacts load lazily so that registering a model
during package import cannot create an import cycle.
"""

from importlib import import_module

from .registry import (
    PAPER_HPARAMS,
    ModelSpec,
    available_models,
    build_model,
    model_display_name,
    model_info,
    register_model,
    resolve_model_name,
)

_LAZY = {
    "DatasetSpec": ".spec",
    "EvalSpec": ".spec",
    "ExperimentSpec": ".spec",
    "Experiment": ".artifacts",
    "ARTIFACT_FORMAT_VERSION": ".artifacts",
    "run": ".runner",
}

__all__ = [
    "PAPER_HPARAMS",
    "ModelSpec",
    "available_models",
    "build_model",
    "model_display_name",
    "model_info",
    "register_model",
    "resolve_model_name",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module, __name__), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
