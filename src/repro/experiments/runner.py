"""Execute an :class:`~repro.experiments.spec.ExperimentSpec` end to end.

``run`` is the one-call pipeline that the examples, benchmarks, and the
``python -m repro`` CLI all share: load dataset → build model through the
registry → train → evaluate → (optionally) export the serving index and
write the artifact directory.

Every run is observable: training and evaluation profilers feed one
:class:`~repro.obs.MetricsRegistry`, whose snapshot is persisted as
``observability.json`` in the artifact directory.  Passing ``registry``
surfaces the same counters on a live ``/metrics`` endpoint; passing
``tracer`` records epoch/validation/eval spans for a Chrome trace.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..nn import precision
from ..obs.metrics import MetricsRegistry
from ..profiling import Profiler
from ..train.trainer import train_model
from .artifacts import Experiment
from .registry import model_display_name
from .spec import ExperimentSpec


def run(
    spec: Union[ExperimentSpec, Dict],
    artifacts_dir: Optional[str] = None,
    verbose: bool = False,
    eval_workers: int = 0,
    eval_shards: int = 1,
    registry: Optional[MetricsRegistry] = None,
    tracer=None,
) -> Experiment:
    """Run one experiment; returns the live :class:`Experiment` handle.

    ``spec`` may be an :class:`ExperimentSpec` or its ``to_dict`` form.
    With ``artifacts_dir`` set, the full artifact directory (spec,
    checkpoint, index, metrics, loss curve, observability snapshot) is
    written before returning.  ``eval_workers`` / ``eval_shards``
    parallelize the final evaluation pass (results are bit-identical to
    serial; see :mod:`repro.runtime`).  ``registry`` / ``tracer`` are
    optional :mod:`repro.obs` sinks shared with the caller (e.g. a live
    metrics endpoint); omitted, a private registry still collects the run's
    counters for the artifact snapshot.
    """
    if isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    if registry is None:
        registry = MetricsRegistry()

    dataset, _truth = spec.dataset.load()
    if verbose:
        print(f"[{spec.name}] dataset {spec.dataset.name}: {dataset.summary()}")
    # The spec's precision scopes build + train + eval + export, so the whole
    # pipeline (including the frozen index) runs in the recorded dtype.
    with precision(spec.precision):
        model = spec.model.build(dataset)
        if verbose:
            print(
                f"[{spec.name}] training {model_display_name(spec.model.name)} "
                f"({model.num_parameters()} parameters, {spec.precision}) "
                f"for {spec.train.epochs} epochs"
            )
        train_result = train_model(
            model, dataset, spec.train, registry=registry, tracer=tracer
        )
        if verbose and train_result.triples_per_sec:
            print(f"[{spec.name}] trained at {train_result.triples_per_sec:,.0f} triples/s")
        model.eval()
        # The eval profiler gets a private registry so eval_profile stays a
        # pure evaluation summary (shares over eval time, not train+eval);
        # the series then merge into the shared registry, which therefore
        # holds the whole run: train phases + eval phases + counters.
        eval_registry = MetricsRegistry()
        eval_profiler = Profiler(registry=eval_registry)
        metrics = spec.eval.run(
            model, dataset, workers=eval_workers, shards=eval_shards,
            profiler=eval_profiler, tracer=tracer,
        )
        registry.merge(eval_registry.to_json())
    if verbose:
        summary = "  ".join(f"{name}={value:.4f}" for name, value in metrics.items())
        print(f"[{spec.name}] {summary}")

    experiment = Experiment(
        spec, dataset, model, train_result=train_result, metrics=metrics,
        eval_profile=eval_profiler.summary(), obs_snapshot=registry.to_json(),
    )
    if artifacts_dir is not None:
        experiment.save(artifacts_dir)
        if verbose:
            print(f"[{spec.name}] artifacts -> {artifacts_dir}")
    return experiment
