"""Execute an :class:`~repro.experiments.spec.ExperimentSpec` end to end.

``run`` is the one-call pipeline that the examples, benchmarks, and the
``python -m repro`` CLI all share: load dataset → build model through the
registry → train → evaluate → (optionally) export the serving index and
write the artifact directory.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..nn import precision
from ..profiling import Profiler
from ..train.trainer import train_model
from .artifacts import Experiment
from .registry import model_display_name
from .spec import ExperimentSpec


def run(
    spec: Union[ExperimentSpec, Dict],
    artifacts_dir: Optional[str] = None,
    verbose: bool = False,
    eval_workers: int = 0,
    eval_shards: int = 1,
) -> Experiment:
    """Run one experiment; returns the live :class:`Experiment` handle.

    ``spec`` may be an :class:`ExperimentSpec` or its ``to_dict`` form.
    With ``artifacts_dir`` set, the full artifact directory (spec,
    checkpoint, index, metrics, loss curve) is written before returning.
    ``eval_workers`` / ``eval_shards`` parallelize the final evaluation
    pass (results are bit-identical to serial; see :mod:`repro.runtime`).
    """
    if isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)

    dataset, _truth = spec.dataset.load()
    if verbose:
        print(f"[{spec.name}] dataset {spec.dataset.name}: {dataset.summary()}")
    # The spec's precision scopes build + train + eval + export, so the whole
    # pipeline (including the frozen index) runs in the recorded dtype.
    with precision(spec.precision):
        model = spec.model.build(dataset)
        if verbose:
            print(
                f"[{spec.name}] training {model_display_name(spec.model.name)} "
                f"({model.num_parameters()} parameters, {spec.precision}) "
                f"for {spec.train.epochs} epochs"
            )
        train_result = train_model(model, dataset, spec.train)
        if verbose and train_result.triples_per_sec:
            print(f"[{spec.name}] trained at {train_result.triples_per_sec:,.0f} triples/s")
        model.eval()
        eval_profiler = Profiler()
        metrics = spec.eval.run(
            model, dataset, workers=eval_workers, shards=eval_shards, profiler=eval_profiler
        )
    if verbose:
        summary = "  ".join(f"{name}={value:.4f}" for name, value in metrics.items())
        print(f"[{spec.name}] {summary}")

    experiment = Experiment(
        spec, dataset, model, train_result=train_result, metrics=metrics,
        eval_profile=eval_profiler.summary(),
    )
    if artifacts_dir is not None:
        experiment.save(artifacts_dir)
        if verbose:
            print(f"[{spec.name}] artifacts -> {artifacts_dir}")
    return experiment
