"""Declarative, serializable experiment specifications.

An :class:`ExperimentSpec` is the complete, JSON-serializable description
of one experiment — the thing every example and benchmark used to
hand-wire: which dataset (:class:`DatasetSpec`), which model
(:class:`~repro.experiments.registry.ModelSpec`), which training recipe
(:class:`~repro.train.TrainConfig`) and which evaluation protocol
(:class:`EvalSpec`), plus whether to export a serving index.  ``to_dict`` /
``from_dict`` round-trip losslessly, which is what makes experiment
artifact directories self-describing (spec.json) and reloadable.

Execution lives in :func:`repro.experiments.runner.run`; this module is
pure description.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..data.registry import available_datasets, load_dataset
from ..eval.ranking import evaluate
from ..train.config import TrainConfig
from .registry import ModelSpec, _jsonify

_SPLITS = ("train", "validation", "test")


@dataclass
class DatasetSpec:
    """One loadable dataset configuration (registry name + builder args)."""

    name: str
    scale: float = 1.0
    seed: int = 0
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in available_datasets():
            raise KeyError(
                f"unknown dataset {self.name!r}; available: {available_datasets()}"
            )
        self.scale = float(self.scale)
        self.seed = int(self.seed)
        self.kwargs = _jsonify(dict(self.kwargs))

    def load(self):
        """Build (or fetch from the registry cache) dataset + ground truth."""
        return load_dataset(self.name, seed=self.seed, scale=self.scale, **self.kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scale": self.scale,
            "seed": self.seed,
            "kwargs": dict(self.kwargs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DatasetSpec":
        unknown = set(payload) - {"name", "scale", "seed", "kwargs"}
        if unknown:
            raise ValueError(f"unknown DatasetSpec fields: {sorted(unknown)}")
        return cls(
            name=payload["name"],
            scale=payload.get("scale", 1.0),
            seed=payload.get("seed", 0),
            kwargs=dict(payload.get("kwargs") or {}),
        )


@dataclass
class EvalSpec:
    """The full-ranking evaluation protocol (split, cutoffs, exclusions)."""

    split: str = "test"
    ks: Tuple[int, ...] = (50, 100)
    exclude_train: bool = True

    def __post_init__(self) -> None:
        if self.split not in _SPLITS:
            raise ValueError(f"split must be one of {_SPLITS}, got {self.split!r}")
        self.ks = tuple(sorted(set(int(k) for k in self.ks)))
        if not self.ks or self.ks[0] < 1:
            raise ValueError(f"ks must be positive cutoffs, got {self.ks}")
        self.exclude_train = bool(self.exclude_train)

    def run(
        self, model, dataset, workers: int = 0, mode: str = "auto", shards: int = 1,
        profiler=None, tracer=None,
    ) -> Dict[str, float]:
        """Evaluate ``model`` under this protocol.

        ``workers`` / ``mode`` / ``shards`` are execution knobs, not part of
        the protocol — results are bit-identical for every setting (see
        :mod:`repro.runtime`), which is why they are call-time arguments
        rather than serialized spec fields.  ``profiler`` / ``tracer`` are
        observation hooks (:mod:`repro.obs`) and change nothing either.
        """
        return evaluate(
            model, dataset, split=self.split, ks=self.ks, exclude_train=self.exclude_train,
            workers=workers, mode=mode, shards=shards, profiler=profiler, tracer=tracer,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "split": self.split,
            "ks": list(self.ks),
            "exclude_train": self.exclude_train,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EvalSpec":
        unknown = set(payload) - {"split", "ks", "exclude_train"}
        if unknown:
            raise ValueError(f"unknown EvalSpec fields: {sorted(unknown)}")
        return cls(
            split=payload.get("split", "test"),
            ks=tuple(payload.get("ks") or (50, 100)),
            exclude_train=payload.get("exclude_train", True),
        )


@dataclass
class ExperimentSpec:
    """Everything needed to run one experiment, as data."""

    dataset: DatasetSpec
    model: ModelSpec
    train: TrainConfig = field(default_factory=TrainConfig)
    eval: EvalSpec = field(default_factory=EvalSpec)
    export: bool = True
    name: Optional[str] = None
    #: compute precision the whole pipeline (build + train + export) runs
    #: under; recorded in spec.json so Experiment.load rebuilds the model in
    #: the precision it was trained in (keeping live == index bit-identical)
    precision: str = "float64"

    def __post_init__(self) -> None:
        if isinstance(self.dataset, str):
            self.dataset = DatasetSpec(self.dataset)
        if isinstance(self.model, str):
            self.model = ModelSpec(self.model)
        self.export = bool(self.export)
        if self.precision not in ("float32", "float64"):
            raise ValueError(
                f"precision must be 'float32' or 'float64', got {self.precision!r}"
            )
        if self.name is None:
            self.name = f"{self.model.name}_{self.dataset.name}"

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        model: str,
        dataset: str,
        *,
        hparams: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        scale: float = 1.0,
        data_seed: int = 0,
        dataset_kwargs: Optional[Dict[str, Any]] = None,
        train: Optional[TrainConfig] = None,
        split: str = "test",
        ks: Tuple[int, ...] = (50, 100),
        exclude_train: bool = True,
        export: bool = True,
        name: Optional[str] = None,
        precision: str = "float64",
        **train_kwargs,
    ) -> "ExperimentSpec":
        """Ergonomic constructor from plain names and keyword arguments.

        Extra keyword arguments become :class:`TrainConfig` fields, so
        ``ExperimentSpec.create("pup", "yelp", epochs=20)`` works; ``seed``
        seeds both model init and training unless ``train`` is given.
        """
        if train is None:
            train_kwargs.setdefault("seed", seed)
            train = TrainConfig(**train_kwargs)
        elif train_kwargs:
            raise ValueError("pass either a TrainConfig or TrainConfig kwargs, not both")
        return cls(
            dataset=DatasetSpec(
                dataset, scale=scale, seed=data_seed, kwargs=dataset_kwargs or {}
            ),
            model=ModelSpec(model, hparams=hparams or {}, seed=seed),
            train=train,
            eval=EvalSpec(split=split, ks=ks, exclude_train=exclude_train),
            export=export,
            name=name,
            precision=precision,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "dataset": self.dataset.to_dict(),
            "model": self.model.to_dict(),
            "train": self.train.to_dict(),
            "eval": self.eval.to_dict(),
            "export": self.export,
            "precision": self.precision,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentSpec":
        unknown = set(payload) - {
            "name", "dataset", "model", "train", "eval", "export", "precision",
        }
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        return cls(
            dataset=DatasetSpec.from_dict(payload["dataset"]),
            model=ModelSpec.from_dict(payload["model"]),
            train=TrainConfig.from_dict(payload.get("train") or {}),
            eval=EvalSpec.from_dict(payload.get("eval") or {}),
            export=payload.get("export", True),
            name=payload.get("name"),
            # specs written before the precision policy existed are float64
            precision=payload.get("precision", "float64"),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> str:
        """Write the spec alone to a JSON file (artifact dirs embed it too)."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        """Read a spec JSON file — bare, or an artifact dir's versioned one.

        Accepting the enveloped form means ``--spec runs/<name>/spec.json``
        re-runs a finished experiment directly.
        """
        with open(path) as handle:
            payload = json.load(handle)
        if "experiment" in payload and "format_version" in payload:
            payload = payload["experiment"]
        return cls.from_dict(payload)
