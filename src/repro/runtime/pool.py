"""Order-preserving worker pools with process/thread/serial modes.

:class:`WorkerPool` is the one execution primitive the batch-inference
runtime uses: ``map(fn, payloads)`` returns results in payload order no
matter which worker computed them, which is half of the determinism
contract (the other half is that every payload is computed by the same
pure kernel).

Mode resolution is graceful: ``"auto"`` prefers a process pool (true
parallelism, ``fork`` start method where the OS offers it so workers
inherit read-only state copy-on-write instead of pickling it), falls back
to a thread pool when process creation fails (restricted sandboxes,
missing ``/dev/shm``), and to serial execution when even threads are
unavailable.  Explicitly requested modes fall back the same way with a
warning rather than crashing an evaluation that would succeed serially —
results are identical in every mode, only wall time differs.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence

MODES = ("auto", "serial", "thread", "process")


def _fork_context():
    """The preferred multiprocessing context (fork when the OS has it)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


class WorkerPool:
    """Maps payloads over ``workers`` workers, preserving payload order.

    ``workers <= 1`` always resolves to serial execution.  ``initializer``
    (with ``initargs``) runs once per process-pool worker — under the
    ``fork`` start method the arguments are inherited, not pickled, so
    passing large read-only arrays is free.  Thread and serial modes share
    the caller's memory and do not need (or run) the initializer unless
    ``initialize_local=True``.
    """

    def __init__(
        self,
        workers: int = 0,
        mode: str = "auto",
        initializer: Optional[Callable] = None,
        initargs: Sequence = (),
        initialize_local: bool = False,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = int(workers)
        self.requested_mode = mode
        self._pool = None
        self._executor = None
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._initialize_local = initialize_local
        self.mode = self._resolve(mode)

    # ------------------------------------------------------------------
    def _resolve(self, mode: str) -> str:
        if self.workers <= 1 or mode == "serial":
            self._init_local()
            return "serial"
        if mode in ("auto", "process"):
            try:
                context = _fork_context()
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=self._initializer,
                    initargs=self._initargs,
                )
                return "process"
            except Exception as error:  # pragma: no cover - platform dependent
                if mode == "process":
                    warnings.warn(
                        f"process pool unavailable ({error}); falling back to threads",
                        stacklevel=3,
                    )
        try:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
            self._init_local()
            return "thread"
        except Exception as error:  # pragma: no cover - platform dependent
            warnings.warn(
                f"thread pool unavailable ({error}); falling back to serial",
                stacklevel=3,
            )
            self._init_local()
            return "serial"

    def _init_local(self) -> None:
        if self._initializer is not None and self._initialize_local:
            self._initializer(*self._initargs)

    # ------------------------------------------------------------------
    def map(self, fn: Callable, payloads: Iterable) -> List:
        """``[fn(p) for p in payloads]``, parallelized, results in order."""
        payloads = list(payloads)
        if self.mode == "process":
            return self._pool.map(fn, payloads, chunksize=1)
        if self.mode == "thread":
            return list(self._executor.map(fn, payloads))
        return [fn(payload) for payload in payloads]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
