"""Order-preserving worker pools with process/thread/serial modes.

:class:`WorkerPool` is the one execution primitive the batch-inference
runtime uses: ``map(fn, payloads)`` returns results in payload order no
matter which worker computed them, which is half of the determinism
contract (the other half is that every payload is computed by the same
pure kernel).

Mode resolution is graceful: ``"auto"`` prefers a process pool (true
parallelism, ``fork`` start method where the OS offers it so workers
inherit read-only state copy-on-write instead of pickling it), falls back
to a thread pool when process creation fails (restricted sandboxes,
missing ``/dev/shm``), and to serial execution when even threads are
unavailable.  Explicitly requested modes fall back the same way with a
warning rather than crashing an evaluation that would succeed serially —
results are identical in every mode, only wall time differs.

Crash recovery: process-mode ``map`` is *supervised*.  ``multiprocessing``
respawns a worker that dies mid-task, but the task itself is lost and a
bare ``Pool.map`` would block on it forever (historically only the 60 s
reinitialize barrier ever noticed).  The supervised dispatcher polls task
completion, detects worker deaths by watching the pool's live pid set, and
resubmits the lost chunks with bounded retries (``max_chunk_retries``)
before failing loudly with :class:`WorkerCrashed`.  Chunk kernels are pure,
so a resubmitted chunk that turns out not to have been lost merely wastes
one duplicate computation — it cannot change results.  Deaths and retries
are counted (``pool_worker_deaths_total`` / ``pool_chunk_retries_total``)
when a registry is attached.

Deterministic crash drills: pass a :class:`~repro.faults.FaultPlan` with a
``pool.worker_crash`` spec.  The plan is consulted in the *parent* at
submit time (cross-process determinism) and a firing occurrence ships a
crash marker instead of the real payload; the worker that picks it up dies
via ``os._exit`` exactly as a segfaulted or OOM-killed worker would.
Resubmissions consult the plan again, so an always-fire spec exhausts the
retry budget and proves the loud-failure path.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence

from ..faults import POOL_WORKER_CRASH, FaultPlan

MODES = ("auto", "serial", "thread", "process")


class WorkerCrashed(RuntimeError):
    """A process worker died and the lost chunk's bounded retries ran out."""


class _CrashMarker:
    """Payload substitute that makes the receiving worker die abruptly."""

    __slots__ = ("exit_code",)

    def __init__(self, exit_code: int = 1) -> None:
        self.exit_code = exit_code


def _supervised_call(fn, payload):
    """Worker-side shim for supervised dispatch: run the chunk, or die."""
    if isinstance(payload, _CrashMarker):
        # Bypass every handler and finally block, like a real hard crash.
        os._exit(payload.exit_code)
    return fn(payload)


def _fork_context():
    """The preferred multiprocessing context (fork when the OS has it)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


#: per-process rendezvous barrier, inherited by pool workers at creation;
#: lets :meth:`WorkerPool.reinitialize` broadcast to every worker exactly once
_WORKER_BARRIER = None


def _bootstrap_worker(barrier, initializer, initargs_holder) -> None:
    """Process-pool initializer wrapper: stash the barrier, run the user's.

    ``initargs_holder`` is a one-element list read at bootstrap time, so a
    worker the pool respawns after :meth:`WorkerPool.reinitialize` picks up
    the *current* arguments, not the ones captured at pool creation.
    """
    global _WORKER_BARRIER
    _WORKER_BARRIER = barrier
    if initializer is not None:
        initializer(*initargs_holder[0])


def _reinitialize_worker(payload) -> bool:
    """One broadcast task: rendezvous, then re-run the initializer.

    The barrier makes the broadcast exact: with ``workers`` of these tasks
    in flight and every one blocking until all ``workers`` processes have
    picked one up, no worker can take two — so each runs the initializer
    exactly once.  A 60s timeout turns a dead worker into a loud
    ``BrokenBarrierError`` instead of a silent hang.
    """
    initializer, initargs = payload
    _WORKER_BARRIER.wait(timeout=60)
    initializer(*initargs)
    return True


class WorkerPool:
    """Maps payloads over ``workers`` workers, preserving payload order.

    ``workers <= 1`` always resolves to serial execution.  ``initializer``
    (with ``initargs``) runs once per process-pool worker — under the
    ``fork`` start method the arguments are inherited, not pickled, so
    passing large read-only arrays is free.  Thread and serial modes share
    the caller's memory and do not need (or run) the initializer unless
    ``initialize_local=True``.
    """

    def __init__(
        self,
        workers: int = 0,
        mode: str = "auto",
        initializer: Optional[Callable] = None,
        initargs: Sequence = (),
        initialize_local: bool = False,
        registry=None,
        fault_plan: Optional[FaultPlan] = None,
        max_chunk_retries: int = 2,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if max_chunk_retries < 0:
            raise ValueError(f"max_chunk_retries must be >= 0, got {max_chunk_retries}")
        self.workers = int(workers)
        self.requested_mode = mode
        self.fault_plan = fault_plan
        self.max_chunk_retries = int(max_chunk_retries)
        self.worker_deaths = 0
        self.chunk_retries = 0
        self._pool = None
        self._executor = None
        self._barrier = None
        self._initializer = initializer
        self._initargs_holder = [tuple(initargs)]
        self._initialize_local = initialize_local
        self.mode = self._resolve(mode)
        self.registry = registry
        self._deaths_counter = None
        self._retries_counter = None
        if registry is not None:
            self._deaths_counter = registry.counter(
                "pool_worker_deaths_total", "Process-pool workers that died mid-map."
            )
            self._retries_counter = registry.counter(
                "pool_chunk_retries_total", "Lost chunks resubmitted after a worker death."
            )
            self._map_calls = registry.counter(
                "pool_map_calls_total", "WorkerPool.map invocations, by pool mode.",
                labels=("mode",),
            )
            self._payloads = registry.counter(
                "pool_payloads_total", "Payloads dispatched, by pool mode.",
                labels=("mode",),
            )
            self._map_seconds = registry.histogram(
                "pool_map_seconds", "Wall time of one WorkerPool.map call."
            )

    # ------------------------------------------------------------------
    def _resolve(self, mode: str) -> str:
        if self.workers <= 1 or mode == "serial":
            self._init_local()
            return "serial"
        if mode in ("auto", "process"):
            try:
                context = _fork_context()
                self._barrier = context.Barrier(self.workers)
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=_bootstrap_worker,
                    initargs=(self._barrier, self._initializer, self._initargs_holder),
                )
                return "process"
            except Exception as error:  # pragma: no cover - platform dependent
                if mode == "process":
                    warnings.warn(
                        f"process pool unavailable ({error}); falling back to threads",
                        stacklevel=3,
                    )
        try:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
            self._init_local()
            return "thread"
        except Exception as error:  # pragma: no cover - platform dependent
            warnings.warn(
                f"thread pool unavailable ({error}); falling back to serial",
                stacklevel=3,
            )
            self._init_local()
            return "serial"

    def _init_local(self) -> None:
        if self._initializer is not None and self._initialize_local:
            self._initializer(*self._initargs_holder[0])

    # ------------------------------------------------------------------
    def reinitialize(self, *initargs) -> None:
        """Re-run the initializer with new arguments on every worker.

        This is what lets a long-lived pool track state that changes
        between uses (a trainer's refreshed validation branches) without
        paying pool teardown + startup each time.  For a process pool the
        new arguments are broadcast through a barrier rendezvous — each
        worker runs the initializer exactly once (see
        :func:`_reinitialize_worker`); thread/serial modes share the
        caller's memory, so only a local ``initialize_local`` rerun is
        needed.  The new arguments also replace the stored ``initargs``,
        so workers (re)created later initialize consistently.
        """
        self._initargs_holder[0] = tuple(initargs)
        if self.mode == "process":
            payloads = [(self._initializer, self._initargs_holder[0])] * self.workers
            self._pool.map(_reinitialize_worker, payloads, chunksize=1)
        else:
            self._init_local()

    # ------------------------------------------------------------------
    def map(self, fn: Callable, payloads: Iterable) -> List:
        """``[fn(p) for p in payloads]``, parallelized, results in order."""
        payloads = list(payloads)
        if self.registry is not None:
            self._map_calls.labels_key((self.mode,), 1)
            self._payloads.labels_key((self.mode,), len(payloads))
            with self._map_seconds.time():
                return self._map(fn, payloads)
        return self._map(fn, payloads)

    def _map(self, fn: Callable, payloads: List) -> List:
        if self.mode == "process":
            return self._map_process(fn, payloads)
        if self.mode == "thread":
            return list(self._executor.map(fn, payloads))
        return [fn(payload) for payload in payloads]

    # ------------------------------------------------------------------
    # Supervised process dispatch (crash detection + bounded chunk retry)
    # ------------------------------------------------------------------
    def _live_worker_pids(self) -> Optional[frozenset]:
        """Pids of pool workers still running (None if not introspectable)."""
        procs = getattr(self._pool, "_pool", None)
        if procs is None:  # pragma: no cover - unexpected stdlib change
            return None
        return frozenset(p.pid for p in list(procs) if p.exitcode is None)

    def _note_worker_deaths(self, n: int) -> None:
        self.worker_deaths += n
        if self._deaths_counter is not None:
            self._deaths_counter.inc(n)

    def _note_chunk_retry(self) -> None:
        self.chunk_retries += 1
        if self._retries_counter is not None:
            self._retries_counter.inc()

    def _map_process(self, fn: Callable, payloads: List) -> List:
        n = len(payloads)
        results: List = [None] * n
        attempts = [0] * n
        handles: dict = {}

        def submit(i: int) -> None:
            payload = payloads[i]
            if self.fault_plan is not None and self.fault_plan.should_fire(
                POOL_WORKER_CRASH
            ):
                payload = _CrashMarker()
            handles[i] = self._pool.apply_async(_supervised_call, (fn, payload))

        # Capture the live set *before* dispatch: a worker that dies between
        # submit and the first poll must still show up as a pid-set change.
        live = self._live_worker_pids()
        for i in range(n):
            submit(i)
        outstanding = set(range(n))
        while outstanding:
            progressed = False
            for i in sorted(outstanding):
                if handles[i].ready():
                    results[i] = handles[i].get()
                    outstanding.discard(i)
                    progressed = True
            if progressed or not outstanding:
                continue
            # Results come back roughly in dispatch order, so the lowest
            # outstanding handle is the best thing to block on; the short
            # timeout bounds how long a worker death goes unnoticed.
            handles[min(outstanding)].wait(timeout=0.05)
            now_live = self._live_worker_pids()
            if now_live is None or now_live == live:
                continue
            dead = () if live is None else live - now_live
            live = now_live
            if not dead:
                continue  # only respawns observed; no task was lost
            self._note_worker_deaths(len(dead))
            for i in sorted(outstanding):
                if handles[i].ready():
                    continue
                attempts[i] += 1
                if attempts[i] > self.max_chunk_retries:
                    raise WorkerCrashed(
                        f"chunk {i} lost to a dead process worker "
                        f"{attempts[i]} times (max_chunk_retries="
                        f"{self.max_chunk_retries}); giving up"
                    )
                self._note_chunk_retry()
                submit(i)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
