"""Order-preserving worker pools with process/thread/serial modes.

:class:`WorkerPool` is the one execution primitive the batch-inference
runtime uses: ``map(fn, payloads)`` returns results in payload order no
matter which worker computed them, which is half of the determinism
contract (the other half is that every payload is computed by the same
pure kernel).

Mode resolution is graceful: ``"auto"`` prefers a process pool (true
parallelism, ``fork`` start method where the OS offers it so workers
inherit read-only state copy-on-write instead of pickling it), falls back
to a thread pool when process creation fails (restricted sandboxes,
missing ``/dev/shm``), and to serial execution when even threads are
unavailable.  Explicitly requested modes fall back the same way with a
warning rather than crashing an evaluation that would succeed serially —
results are identical in every mode, only wall time differs.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence

MODES = ("auto", "serial", "thread", "process")


def _fork_context():
    """The preferred multiprocessing context (fork when the OS has it)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


#: per-process rendezvous barrier, inherited by pool workers at creation;
#: lets :meth:`WorkerPool.reinitialize` broadcast to every worker exactly once
_WORKER_BARRIER = None


def _bootstrap_worker(barrier, initializer, initargs_holder) -> None:
    """Process-pool initializer wrapper: stash the barrier, run the user's.

    ``initargs_holder`` is a one-element list read at bootstrap time, so a
    worker the pool respawns after :meth:`WorkerPool.reinitialize` picks up
    the *current* arguments, not the ones captured at pool creation.
    """
    global _WORKER_BARRIER
    _WORKER_BARRIER = barrier
    if initializer is not None:
        initializer(*initargs_holder[0])


def _reinitialize_worker(payload) -> bool:
    """One broadcast task: rendezvous, then re-run the initializer.

    The barrier makes the broadcast exact: with ``workers`` of these tasks
    in flight and every one blocking until all ``workers`` processes have
    picked one up, no worker can take two — so each runs the initializer
    exactly once.  A 60s timeout turns a dead worker into a loud
    ``BrokenBarrierError`` instead of a silent hang.
    """
    initializer, initargs = payload
    _WORKER_BARRIER.wait(timeout=60)
    initializer(*initargs)
    return True


class WorkerPool:
    """Maps payloads over ``workers`` workers, preserving payload order.

    ``workers <= 1`` always resolves to serial execution.  ``initializer``
    (with ``initargs``) runs once per process-pool worker — under the
    ``fork`` start method the arguments are inherited, not pickled, so
    passing large read-only arrays is free.  Thread and serial modes share
    the caller's memory and do not need (or run) the initializer unless
    ``initialize_local=True``.
    """

    def __init__(
        self,
        workers: int = 0,
        mode: str = "auto",
        initializer: Optional[Callable] = None,
        initargs: Sequence = (),
        initialize_local: bool = False,
        registry=None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = int(workers)
        self.requested_mode = mode
        self._pool = None
        self._executor = None
        self._barrier = None
        self._initializer = initializer
        self._initargs_holder = [tuple(initargs)]
        self._initialize_local = initialize_local
        self.mode = self._resolve(mode)
        self.registry = registry
        if registry is not None:
            self._map_calls = registry.counter(
                "pool_map_calls_total", "WorkerPool.map invocations, by pool mode.",
                labels=("mode",),
            )
            self._payloads = registry.counter(
                "pool_payloads_total", "Payloads dispatched, by pool mode.",
                labels=("mode",),
            )
            self._map_seconds = registry.histogram(
                "pool_map_seconds", "Wall time of one WorkerPool.map call."
            )

    # ------------------------------------------------------------------
    def _resolve(self, mode: str) -> str:
        if self.workers <= 1 or mode == "serial":
            self._init_local()
            return "serial"
        if mode in ("auto", "process"):
            try:
                context = _fork_context()
                self._barrier = context.Barrier(self.workers)
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=_bootstrap_worker,
                    initargs=(self._barrier, self._initializer, self._initargs_holder),
                )
                return "process"
            except Exception as error:  # pragma: no cover - platform dependent
                if mode == "process":
                    warnings.warn(
                        f"process pool unavailable ({error}); falling back to threads",
                        stacklevel=3,
                    )
        try:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
            self._init_local()
            return "thread"
        except Exception as error:  # pragma: no cover - platform dependent
            warnings.warn(
                f"thread pool unavailable ({error}); falling back to serial",
                stacklevel=3,
            )
            self._init_local()
            return "serial"

    def _init_local(self) -> None:
        if self._initializer is not None and self._initialize_local:
            self._initializer(*self._initargs_holder[0])

    # ------------------------------------------------------------------
    def reinitialize(self, *initargs) -> None:
        """Re-run the initializer with new arguments on every worker.

        This is what lets a long-lived pool track state that changes
        between uses (a trainer's refreshed validation branches) without
        paying pool teardown + startup each time.  For a process pool the
        new arguments are broadcast through a barrier rendezvous — each
        worker runs the initializer exactly once (see
        :func:`_reinitialize_worker`); thread/serial modes share the
        caller's memory, so only a local ``initialize_local`` rerun is
        needed.  The new arguments also replace the stored ``initargs``,
        so workers (re)created later initialize consistently.
        """
        self._initargs_holder[0] = tuple(initargs)
        if self.mode == "process":
            payloads = [(self._initializer, self._initargs_holder[0])] * self.workers
            self._pool.map(_reinitialize_worker, payloads, chunksize=1)
        else:
            self._init_local()

    # ------------------------------------------------------------------
    def map(self, fn: Callable, payloads: Iterable) -> List:
        """``[fn(p) for p in payloads]``, parallelized, results in order."""
        payloads = list(payloads)
        if self.registry is not None:
            self._map_calls.labels_key((self.mode,), 1)
            self._payloads.labels_key((self.mode,), len(payloads))
            with self._map_seconds.time():
                return self._map(fn, payloads)
        return self._map(fn, payloads)

    def _map(self, fn: Callable, payloads: List) -> List:
        if self.mode == "process":
            return self._pool.map(fn, payloads, chunksize=1)
        if self.mode == "thread":
            return list(self._executor.map(fn, payloads))
        return [fn(payload) for payload in payloads]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
