"""The batch-inference execution engine: chunk dispatch + bulk export.

:class:`BatchRuntime` turns a frozen factorization (an
:class:`~repro.serving.index.EmbeddingIndex` or raw branches) plus an
exclusion mask into a reusable executor: ``rank(users, k)`` splits the
users into fixed-size chunks, dispatches them to a
:class:`~repro.runtime.pool.WorkerPool`, and reassembles results in user
order.  The chunk layout depends only on ``user_chunk`` — never on the
worker count or pool mode — and every chunk runs the same
:meth:`~repro.runtime.sharded.ShardedIndex.topk_chunk` kernel, which is
what makes rankings bit-identical across serial, threaded, and
multi-process execution.

Worker transport: process pools prefer the ``fork`` start method, so the
factorization is inherited copy-on-write — zero copies, zero pickling.
When the runtime is built from an index loaded with
``EmbeddingIndex.load(path, mmap=True)``, workers instead re-attach to the
on-disk directory by path, mapping the same page-cache copy (this is also
what makes ``spawn``-only platforms cheap).  Each worker keeps one
preallocated score buffer per thread, so steady-state evaluation performs
no per-chunk score-matrix allocations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.base import ScoreBranch
from ..obs.trace import Tracer, maybe_span
from .pool import WorkerPool
from .sharded import ShardedIndex, _Buffers

#: profiler phase names the runtime reports (mirrors the trainer's phases)
EVAL_PHASES = ("score", "topk", "merge", "ann_search")

#: sentinel for :meth:`BatchRuntime.refresh` arguments meaning "keep current"
_KEEP = object()


@dataclass
class RuntimeConfig:
    """Execution knobs — none of them can change results, only wall time."""

    workers: int = 0
    mode: str = "auto"
    shards: int = 1
    user_chunk: int = 256

    def __post_init__(self) -> None:
        if self.user_chunk < 1:
            raise ValueError(f"user_chunk must be >= 1, got {self.user_chunk}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")


class _WorkerState:
    """Per-process (or shared, for threads) kernel state with local buffers."""

    def __init__(
        self,
        sharded: ShardedIndex,
        exclude_csr: Optional[Tuple[np.ndarray, np.ndarray]],
        ann=None,
    ) -> None:
        self.sharded = sharded
        self.exclude_csr = exclude_csr
        self.ann = ann
        self._local = threading.local()

    def buffers(self) -> _Buffers:
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = self._local.buffers = _Buffers()
        return buffers


#: process-pool worker state, populated by :func:`_init_process_worker`
_PROCESS_STATE: Optional[_WorkerState] = None


def _build_state(spec: Dict) -> _WorkerState:
    if spec.get("index_path") is not None:
        from ..serving.index import EmbeddingIndex  # deferred: avoids a cycle

        index = EmbeddingIndex.load(spec["index_path"], mmap=spec.get("index_mmap", False))
        branches = index.branches
        exclude_csr = (
            (index.exclude_indptr, index.exclude_indices) if spec["exclude"] else None
        )
    else:
        branches = spec["branches"]
        exclude_csr = spec["exclude_csr"]
    return _WorkerState(ShardedIndex(branches, spec["shards"]), exclude_csr, spec.get("ann"))


def _init_process_worker(spec: Dict) -> None:
    global _PROCESS_STATE
    _PROCESS_STATE = _build_state(spec)


def _rank_chunk_process(payload) -> Tuple[int, np.ndarray, Optional[np.ndarray], Dict, Optional[List]]:
    chunk_id, ids, scores, timings, spans = _rank_chunk(_PROCESS_STATE, payload)
    # Item ids always fit int32 (catalogs are nowhere near 2**31); halving
    # the result payload halves the pickle/IPC cost of the hot direction.
    return chunk_id, ids.astype(np.int32, copy=False), scores, timings, spans


def _rank_chunk(
    state: _WorkerState, payload
) -> Tuple[int, np.ndarray, Optional[np.ndarray], Dict, Optional[List]]:
    """Rank one chunk; the worker half of the runtime's determinism contract.

    ``payload[5]`` is an optional trace context ``{"trace_id", "parent_id"}``
    from the parent's tracer.  When present, the chunk records its spans
    into a worker-local :class:`Tracer` and ships them back as plain dicts
    in the result tuple — the same pickle path the rankings take — for the
    parent to fold in with ``Tracer.extend``.  ``perf_counter`` is
    CLOCK_MONOTONIC on Linux, shared by forked children, so worker span
    timestamps land on the parent's timeline.
    """
    chunk_id, users, k, with_scores, candidates, trace_ctx = payload
    timings: Dict[str, float] = {}
    tracer = Tracer(process_name="runtime-worker") if trace_ctx is not None else None
    with maybe_span(
        tracer,
        "chunk.rank",
        cat="runtime",
        trace_id=trace_ctx["trace_id"] if trace_ctx else None,
        parent_id=trace_ctx["parent_id"] if trace_ctx else None,
        attrs={"chunk_id": chunk_id, "n_users": len(users)},
    ):
        if state.ann is not None:
            import time

            tick = time.perf_counter()
            ids, scores = state.ann.search(
                users, k, exclude_csr=state.exclude_csr, tracer=tracer
            )
            timings["ann_search"] = time.perf_counter() - tick
            if not with_scores:
                scores = None
        else:
            ids, scores = state.sharded.topk_chunk(
                users,
                k,
                exclude_csr=state.exclude_csr,
                candidate_items=candidates,
                buffers=state.buffers(),
                with_scores=with_scores,
                timings=timings,
            )
    spans = tracer.records() if tracer is not None else None
    return chunk_id, ids, scores, timings, spans


class BatchRuntime:
    """A reusable parallel executor for full-catalog top-K over many users.

    ``source`` is an :class:`~repro.serving.index.EmbeddingIndex` or a list
    of :class:`~repro.core.base.ScoreBranch` factors.  ``exclude_csr`` is
    the per-user exclusion mask as ``(indptr, indices)``; pass
    ``exclude_csr=None`` for unmasked ranking.  The runtime is a context
    manager; ``close()`` tears the pool down.
    """

    def __init__(
        self,
        source: Union["EmbeddingIndex", Sequence[ScoreBranch]],
        config: Optional[RuntimeConfig] = None,
        exclude_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        ann=None,
        fault_plan=None,
    ) -> None:
        self.config = config or RuntimeConfig()
        branches = list(getattr(source, "branches", source))
        self._state = _WorkerState(ShardedIndex(branches, self.config.shards), exclude_csr, ann)
        self.n_items = self._state.sharded.n_items
        if ann is not None and ann.n_items != self.n_items:
            raise ValueError(
                f"ann index covers {ann.n_items} items but the factorization "
                f"has {self.n_items}"
            )

        self._pool = WorkerPool(
            workers=self.config.workers,
            mode=self.config.mode,
            initializer=_init_process_worker,
            initargs=(self._worker_spec(source, branches, exclude_csr, ann),),
            fault_plan=fault_plan,
        )
        self.mode = self._pool.mode

    def _worker_spec(self, source, branches, exclude_csr, ann) -> Dict:
        """Spec the process-pool workers rebuild their state from.

        An index that knows its on-disk mmap location is shipped as a path
        (workers attach to the shared on-disk copy); everything else ships
        the arrays themselves — free under fork (inherited), a one-time
        copy under spawn.  An ANN index always ships as arrays: it wraps
        live objects a path cannot rebuild.
        """
        index_path = getattr(source, "source_path", None)
        index_mmap = bool(getattr(source, "source_mmap", False))
        if index_path is not None and index_mmap and exclude_csr is not None:
            exclude_is_index_own = exclude_csr[0] is getattr(source, "exclude_indptr", None)
        else:
            exclude_is_index_own = False
        if (
            ann is None
            and index_path is not None
            and index_mmap
            and (exclude_csr is None or exclude_is_index_own)
        ):
            return {
                "index_path": index_path,
                "index_mmap": True,
                "exclude": exclude_csr is not None,
                "shards": self.config.shards,
            }
        return {
            "index_path": None,
            "branches": branches,
            "exclude_csr": exclude_csr,
            "shards": self.config.shards,
            "ann": ann,
        }

    def refresh(
        self,
        source: Union["EmbeddingIndex", Sequence[ScoreBranch]],
        exclude_csr=_KEEP,
        ann=_KEEP,
    ) -> None:
        """Point this runtime at updated factors without pool teardown.

        The steady-state shape of a validation loop: the model's frozen
        branches change every epoch, but the worker pool (and its startup
        cost) should be paid once per fit, not once per evaluate.  Local
        state is swapped in place; process-pool workers receive the new
        spec through :meth:`WorkerPool.reinitialize` (one barrier
        broadcast — under ``fork`` that re-pickles the branch arrays once
        per worker, still far cheaper than re-forking a pool).

        ``exclude_csr`` / ``ann`` default to keeping their current values.
        The catalog size must not change — chunk results are merged by
        item id, so a different catalog needs a new runtime.
        """
        branches = list(getattr(source, "branches", source))
        sharded = ShardedIndex(branches, self.config.shards)
        if sharded.n_items != self.n_items:
            raise ValueError(
                f"refresh changed the catalog ({sharded.n_items} items vs "
                f"{self.n_items}); build a new runtime instead"
            )
        if exclude_csr is _KEEP:
            exclude_csr = self._state.exclude_csr
        if ann is _KEEP:
            ann = self._state.ann
        if ann is not None and ann.n_items != self.n_items:
            raise ValueError(
                f"ann index covers {ann.n_items} items but the factorization "
                f"has {self.n_items}"
            )
        self._state = _WorkerState(sharded, exclude_csr, ann)
        if self._pool.mode == "process":
            self._pool.reinitialize(self._worker_spec(source, branches, exclude_csr, ann))

    @property
    def has_exclusions(self) -> bool:
        """Whether this runtime was built with a per-user exclusion mask."""
        return self._state.exclude_csr is not None

    @property
    def ann(self):
        """The ANN index chunks rank through (None = exact ranking)."""
        return self._state.ann

    # ------------------------------------------------------------------
    def rank(
        self,
        users: Sequence[int],
        k: int,
        with_scores: bool = False,
        candidate_items: Optional[Dict[int, np.ndarray]] = None,
        profiler=None,
        tracer=None,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Top-``k`` over the full catalog for every user, in user order.

        Returns ``(users, ids, scores)`` where ``ids`` is an
        ``(len(users), min(k, n_items))`` int64 matrix (``scores`` is None
        unless ``with_scores``).  ``candidate_items`` optionally restricts
        per-user pools (cold-start protocols).  With a ``profiler``, the
        per-chunk ``score`` / ``topk`` / ``merge`` seconds are accumulated
        under those phase names — summed across workers, so in parallel
        modes they are CPU seconds, not wall time.  With a ``tracer``, each
        chunk records a ``chunk.rank`` span (child of this call's
        ``runtime.rank`` span) in its worker and ships it back over the
        result path, process mode included.
        """
        users = np.asarray(list(users), dtype=np.int64)
        k = min(int(k), self.n_items)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if candidate_items is not None and self._state.ann is not None:
            raise ValueError(
                "per-user candidate pools and ANN candidate generation are "
                "mutually exclusive; rank restricted users through an exact "
                "runtime (the pools already prune the catalog)"
            )
        if len(users) == 0:
            empty = np.empty((0, k), dtype=np.int64)
            return users, empty, (np.empty((0, k)) if with_scores else None)

        with maybe_span(
            tracer,
            "runtime.rank",
            cat="runtime",
            attrs={"n_users": len(users), "k": k, "mode": self.mode},
        ) as rank_span:
            trace_ctx = None
            if tracer is not None and tracer.enabled:
                trace_ctx = {
                    "trace_id": rank_span.trace_id,
                    "parent_id": rank_span.span_id,
                }

            chunk = self.config.user_chunk
            payloads = []
            for chunk_id, start in enumerate(range(0, len(users), chunk)):
                chunk_users = users[start : start + chunk]
                candidates = None
                if candidate_items is not None:
                    candidates = [candidate_items.get(int(user)) for user in chunk_users]
                payloads.append((chunk_id, chunk_users, k, with_scores, candidates, trace_ctx))

            if self._pool.mode == "process":
                results = self._pool.map(_rank_chunk_process, payloads)
            else:
                state = self._state
                results = self._pool.map(lambda payload: _rank_chunk(state, payload), payloads)

            results.sort(key=lambda item: item[0])
            ids = np.vstack([item[1] for item in results]).astype(np.int64, copy=False)
            scores = np.vstack([item[2] for item in results]) if with_scores else None
            if profiler is not None:
                totals: Dict[str, float] = {}
                for _, _, _, timings, _ in results:
                    for name, seconds in timings.items():
                        totals[name] = totals.get(name, 0.0) + seconds
                for name in EVAL_PHASES:
                    if name in totals:
                        profiler.add_seconds(name, totals[name])
                profiler.count("chunks", len(payloads))
            if tracer is not None:
                for _, _, _, _, spans in results:
                    if spans:
                        tracer.extend(spans)
        return users, ids, scores

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "BatchRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Bulk offline export
# ----------------------------------------------------------------------
BULK_KIND = "bulk_recommendations"


@dataclass
class BulkRecommendations:
    """Top-K lists for a population of users, as parallel arrays.

    Rows are dense (uniform ``k``), so a user whose unexcluded candidate
    pool is smaller than ``k`` gets sentinel padding: item id ``-1`` with
    score ``-inf``.  Consumers must stop at the first ``-1`` — the online
    serving path (``drop_masked=True``) would simply emit a shorter list.
    """

    users: np.ndarray  # (n,)
    items: np.ndarray  # (n, k); -1 marks padding past the candidate pool
    scores: np.ndarray  # (n, k)
    model_name: str = "unknown"

    @property
    def k(self) -> int:
        return self.items.shape[1]

    def for_user(self, user: int) -> Tuple[np.ndarray, np.ndarray]:
        rows = np.flatnonzero(self.users == user)
        if len(rows) == 0:
            raise KeyError(f"user {user} is not in this export")
        return self.items[rows[0]], self.scores[rows[0]]

    def save(self, path: str) -> str:
        from ..train import persistence  # deferred: train imports eval imports runtime

        return persistence.write_archive(
            path,
            {"users": self.users, "items": self.items, "scores": self.scores},
            {
                persistence.KIND_KEY: BULK_KIND,
                "model_name": self.model_name,
                "k": int(self.k),
                "n_users": int(len(self.users)),
            },
        )

    @classmethod
    def load(cls, path: str) -> "BulkRecommendations":
        from ..train import persistence  # deferred: train imports eval imports runtime

        metadata = persistence.read_archive_metadata(path)
        kind = persistence.archive_kind(metadata)
        if kind != BULK_KIND:
            raise ValueError(f"{path} holds a {kind!r} artifact, not bulk recommendations")
        arrays = persistence.read_archive_arrays(path)
        return cls(
            users=arrays["users"],
            items=arrays["items"],
            scores=arrays["scores"],
            model_name=metadata.get("model_name", "unknown"),
        )


def recommend_all(
    index: "EmbeddingIndex",
    k: int = 10,
    users: Optional[Sequence[int]] = None,
    exclude_train: bool = True,
    workers: int = 0,
    mode: str = "auto",
    shards: int = 1,
    user_chunk: int = 1024,
    profiler=None,
    ann=None,
    tracer=None,
) -> BulkRecommendations:
    """Bulk top-``k`` export for every warm user (or an explicit user list).

    The offline counterpart of :class:`~repro.serving.service.RecommenderService`
    — one call scores the whole population against the full catalog through
    the parallel runtime and returns dense ``(users, items, scores)`` arrays
    ready to push to a key-value store.  Results are bit-identical for any
    ``workers`` / ``mode`` / ``shards`` setting, and identical to the
    retrieval engine's unfiltered rankings for the same users.

    ``ann`` switches the bulk job to candidate-generation mode: chunks rank
    through the given :class:`~repro.serving.ann.IVFIndex` /
    :class:`~repro.serving.ann.QuantizedIndex` instead of exact full-catalog
    scoring — sublinear in catalog size at the index's measured recall
    (``BENCH_ann.json``); at full probe the exported *rankings* are
    bit-identical to the exact ones (scores carry the 1-ULP caveat for
    differing matmul shapes that :mod:`repro.serving.retrieval` documents).
    """
    if users is None:
        counts = np.diff(index.exclude_indptr)
        users = np.flatnonzero(counts > 0)
    config = RuntimeConfig(workers=workers, mode=mode, shards=shards, user_chunk=user_chunk)
    exclude_csr = (index.exclude_indptr, index.exclude_indices) if exclude_train else None
    with BatchRuntime(index, config, exclude_csr=exclude_csr, ann=ann) as runtime:
        ordered, ids, scores = runtime.rank(
            users, k, with_scores=True, profiler=profiler, tracer=tracer
        )
    # A -inf score means the selection ran past the user's unexcluded pool
    # and padded with masked entries; exporting those ids would recommend
    # already-bought items the online path never emits.  Replace with the
    # -1 sentinel.  (A legitimate item whose model score is exactly -inf is
    # indistinguishable and sentineled too — finite scores are unaffected,
    # the same caveat the serving engine's drop_masked documents.)
    ids = np.where(scores > -np.inf, ids, -1)
    return BulkRecommendations(
        users=ordered, items=ids, scores=scores, model_name=index.model_name
    )
