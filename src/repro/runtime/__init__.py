"""Parallel batch-inference runtime: worker pools + sharded full-catalog top-K.

The execution engine behind full-ranking evaluation (:mod:`repro.eval.ranking`)
and bulk offline recommendation export.  Three pieces:

* :class:`~repro.runtime.pool.WorkerPool` — an order-preserving chunk mapper
  with ``process`` / ``thread`` / ``serial`` modes and graceful fallback;
* :class:`~repro.runtime.sharded.ShardedIndex` — an item-range partition of a
  frozen factorization whose per-shard top-K candidates merge through the
  deterministic :mod:`repro.eval.topk` kernels, bit-identical to unsharded
  selection;
* :class:`~repro.runtime.engine.BatchRuntime` — dispatches user chunks to the
  pool with preallocated per-worker score buffers, plus
  :func:`~repro.runtime.engine.recommend_all`, the bulk top-K exporter.

The determinism contract is the point: rankings and metrics are bit-identical
across worker counts, pool modes, and shard counts — parallelism changes wall
time, never results.
"""

from .engine import BatchRuntime, BulkRecommendations, RuntimeConfig, recommend_all
from .pool import WorkerPool
from .sharded import ShardedIndex

__all__ = [
    "BatchRuntime",
    "BulkRecommendations",
    "RuntimeConfig",
    "ShardedIndex",
    "WorkerPool",
    "recommend_all",
]
