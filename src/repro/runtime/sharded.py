"""Item-range sharding of a frozen factorization, with exact top-K merge.

A :class:`ShardedIndex` partitions the item catalog of an
:class:`~repro.serving.index.EmbeddingIndex` (or a raw list of
:class:`~repro.core.base.ScoreBranch` factors) into contiguous ranges.
Full-catalog top-K for a chunk of users is computed shard by shard —
score the shard, mask exclusions that fall inside it, select the local
top-K — and the per-shard candidates merge through
:func:`repro.eval.topk.topk_pairs_rows`, the same deterministic
(score desc, item id asc) order the unsharded kernel uses.

Exactness: every global top-K item is inside its own shard's local top-K
(selection is monotone under the lexicographic order), so the merged
result is bit-identical to single-pass selection — including tie-breaking
across shard boundaries, which the test suite pins with crafted
integer-score factorizations.

All scoring happens in the branches' own dtype (a float32 index is scored
in float32 memory) into caller-provided buffers, so a worker evaluates
arbitrarily many chunks with zero per-chunk score-matrix allocations.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.base import ScoreBranch, branches_dtype, score_branches
from ..data.dataset import expand_csr_rows
from ..eval.topk import NEG_INF, masked_topk, topk_indices_rows, topk_pairs_rows


def shard_ranges(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` item ranges (no empty shards)."""
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_items)
    bounds = [(shard * n_items) // n_shards for shard in range(n_shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(n_shards)]


class _Buffers:
    """Preallocated score buffers for one worker (grown on demand).

    ``scratch`` (the per-branch accumulator :func:`score_branches` needs for
    multi-branch factorizations) is only allocated when asked for —
    single-branch models never pay for a second buffer.  Independent
    ``slot`` names keep differently-shaped consumers (the shard-width main
    pass vs the full-width candidate path) from thrashing each other's
    allocation.
    """

    def __init__(self) -> None:
        self._slots: dict = {}

    def get(
        self,
        rows: int,
        width: int,
        dtype: np.dtype,
        with_scratch: bool = True,
        slot: str = "main",
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        out, scratch = self._slots.get(slot, (None, None))
        if out is None or out.dtype != dtype or out.shape[0] < rows or out.shape[1] < width:
            out = np.empty((rows, width), dtype=dtype)
            scratch = None
        if with_scratch and scratch is None:
            scratch = np.empty_like(out)
        self._slots[slot] = (out, scratch)
        return out, scratch


class ShardedIndex:
    """A frozen factorization split into contiguous item-range shards."""

    def __init__(
        self,
        source: Union["EmbeddingIndex", Sequence[ScoreBranch]],
        n_shards: int = 1,
    ) -> None:
        branches = getattr(source, "branches", source)
        if not branches:
            raise ValueError("a sharded index needs at least one score branch")
        self.branches: List[ScoreBranch] = list(branches)
        self.n_items = self.branches[0].item.shape[0]
        self.n_users = self.branches[0].user.shape[0]
        self.ranges = shard_ranges(self.n_items, n_shards)
        self.n_shards = len(self.ranges)
        self.dtype = branches_dtype(self.branches)

    @property
    def max_shard_width(self) -> int:
        return max(stop - start for start, stop in self.ranges)

    # ------------------------------------------------------------------
    def score_shard(
        self,
        users: np.ndarray,
        shard: int,
        out: Optional[np.ndarray] = None,
        scratch: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Scores of ``users`` against one shard's item range."""
        start, stop = self.ranges[shard]
        return score_branches(self.branches, users, start, stop, out=out, scratch=scratch)

    # ------------------------------------------------------------------
    def topk_chunk(
        self,
        users: np.ndarray,
        k: int,
        exclude_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        candidate_items: Optional[Sequence[Optional[np.ndarray]]] = None,
        buffers: Optional[_Buffers] = None,
        with_scores: bool = False,
        timings: Optional[dict] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Exact top-``k`` item ids (and optionally scores) for a user chunk.

        ``exclude_csr`` is the ``(indptr, indices)`` train-positive mask
        (global item ids, ascending per user); ``candidate_items`` — one
        optional allowed-id array per chunk user — restricts pools the way
        the cold-start protocols do, and routes those rows through the
        per-row :func:`masked_topk` reference kernel.  ``timings``
        accumulates ``score`` / ``topk`` / ``merge`` seconds in place.
        """
        users = np.asarray(users, dtype=np.int64)
        rows = len(users)
        k = min(int(k), self.n_items)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if rows == 0:
            empty = np.empty((0, k), dtype=np.int64)
            return (empty, np.empty((0, k), dtype=self.dtype)) if with_scores else (empty, None)
        buffers = buffers or _Buffers()

        # Rows with a restricted pool go through the reference kernel only —
        # ranking them in the main pass would be thrown-away work (in a
        # cold-start protocol *every* row is restricted).
        restricted = (
            [row for row, cand in enumerate(candidate_items) if cand is not None]
            if candidate_items is not None
            else []
        )
        open_rows = (
            np.arange(rows)
            if not restricted
            else np.setdiff1d(np.arange(rows), restricted, assume_unique=True)
        )

        ids = np.full((rows, k), -1, dtype=np.int64)
        scores = np.full((rows, k), NEG_INF, dtype=self.dtype) if with_scores else None
        if len(open_rows):
            open_users = users[open_rows]
            exclude_rows = exclude_cols = None
            if exclude_csr is not None:
                exclude_rows, exclude_cols = expand_csr_rows(*exclude_csr, open_users)
            rank = self._topk_single if self.n_shards == 1 else self._topk_sharded
            open_ids, open_scores = rank(
                open_users, k, exclude_rows, exclude_cols, buffers, timings, with_scores
            )
            ids[open_rows] = open_ids
            if with_scores:
                scores[open_rows] = open_scores

        if restricted:
            self._apply_candidates(
                users, k, candidate_items, exclude_csr, ids, scores, buffers, restricted,
                timings,
            )
        return ids, scores

    # ------------------------------------------------------------------
    def _topk_single(self, users, k, exclude_rows, exclude_cols, buffers, timings, with_scores):
        out, scratch = buffers.get(
            len(users), self.n_items, self.dtype, with_scratch=len(self.branches) > 1
        )
        tick = time.perf_counter()
        scores = score_branches(self.branches, users, out=out, scratch=scratch)
        if exclude_rows is not None:
            scores[exclude_rows, exclude_cols] = NEG_INF
        tock = time.perf_counter()
        top = topk_indices_rows(scores, k).astype(np.int64, copy=False)
        done = time.perf_counter()
        if timings is not None:
            timings["score"] = timings.get("score", 0.0) + (tock - tick)
            timings["topk"] = timings.get("topk", 0.0) + (done - tock)
        if not with_scores:
            return top, None
        # take_along_axis allocates fresh output — no aliasing of the
        # reused score buffer to worry about.
        return top, np.take_along_axis(scores, top, axis=1)

    def _topk_sharded(self, users, k, exclude_rows, exclude_cols, buffers, timings, with_scores):
        rows = len(users)
        out, scratch = buffers.get(
            rows, self.max_shard_width, self.dtype, with_scratch=len(self.branches) > 1
        )
        candidate_ids: List[np.ndarray] = []
        candidate_scores: List[np.ndarray] = []
        t_score = t_topk = 0.0
        for shard, (start, stop) in enumerate(self.ranges):
            tick = time.perf_counter()
            scores = self.score_shard(users, shard, out=out, scratch=scratch)
            if exclude_rows is not None:
                inside = (exclude_cols >= start) & (exclude_cols < stop)
                if inside.any():
                    scores[exclude_rows[inside], exclude_cols[inside] - start] = NEG_INF
            tock = time.perf_counter()
            local = topk_indices_rows(scores, min(k, stop - start))
            candidate_ids.append(local + start)
            candidate_scores.append(np.take_along_axis(scores, local, axis=1))
            t_score += tock - tick
            t_topk += time.perf_counter() - tock
        tick = time.perf_counter()
        ids = np.hstack(candidate_ids)
        values = np.hstack(candidate_scores)
        merged = topk_pairs_rows(ids, values, k)
        top = np.take_along_axis(ids, merged, axis=1).astype(np.int64, copy=False)
        top_scores = np.take_along_axis(values, merged, axis=1) if with_scores else None
        if timings is not None:
            timings["score"] = timings.get("score", 0.0) + t_score
            timings["topk"] = timings.get("topk", 0.0) + t_topk
            timings["merge"] = timings.get("merge", 0.0) + (time.perf_counter() - tick)
        return top, top_scores

    def _apply_candidates(
        self, users, k, candidate_items, exclude_csr, ids, scores, buffers, restricted,
        timings=None,
    ):
        """Rank rows with restricted pools through the reference kernel.

        Candidate pools are per-user and typically tiny (cold-start
        protocols), so these rows go through :func:`masked_topk` on a
        full-range score row — the exact semantics the serial evaluator has
        always had, unchanged by sharding or parallelism.  Restricted rows
        are scored in small sub-batches so this path never materializes
        more than ``64 x n_items`` scores, regardless of ``user_chunk``
        (note it is full catalog width, not shard width: the reference
        kernel masks a complete row).
        """
        for batch_start in range(0, len(restricted), 64):
            batch = restricted[batch_start : batch_start + 64]
            rows = np.asarray(batch)
            out, scratch = buffers.get(
                len(rows), self.n_items, self.dtype,
                with_scratch=len(self.branches) > 1, slot="full",
            )
            tick = time.perf_counter()
            full = score_branches(self.branches, users[rows], out=out, scratch=scratch)
            tock = time.perf_counter()
            if timings is not None:
                timings["score"] = timings.get("score", 0.0) + (tock - tick)
            for position, row in enumerate(batch):
                exclude = None
                if exclude_csr is not None:
                    indptr, indices = exclude_csr
                    user = users[row]
                    exclude = indices[indptr[user] : indptr[user + 1]]
                top = masked_topk(
                    full[position],
                    k,
                    exclude_items=exclude if exclude is not None and len(exclude) else None,
                    candidate_items=candidate_items[row],
                )
                ids[row, : len(top)] = top
                if scores is not None:
                    # Report the *masked* scores, matching the unrestricted
                    # paths: selections past the allowed pool (or excluded)
                    # are -inf, never the raw model score.
                    allowed = np.isin(top, candidate_items[row])
                    if exclude is not None and len(exclude):
                        allowed &= ~np.isin(top, exclude)
                    scores[row, : len(top)] = np.where(
                        allowed, full[position, top], NEG_INF
                    )
            if timings is not None:
                timings["topk"] = timings.get("topk", 0.0) + (time.perf_counter() - tock)
