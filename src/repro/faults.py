"""Deterministic fault injection for chaos tests and the chaos loadgen.

The resilience layer (worker crash recovery, flusher supervision, circuit
breaker, degradation ladder) is only trustworthy if its failure paths can be
exercised *on demand*, repeatably.  This module provides that trigger: a
seeded :class:`FaultPlan` holding one :class:`FaultSpec` per named injection
point.  Components that support injection (``WorkerPool``,
``RecommenderService``, ``RetrievalEngine``, ``ServingGateway``) accept an
optional plan and consult it at their injection point; production code paths
pass ``None`` and pay a single ``is None`` check.

Determinism contract
--------------------
Each injection point keeps an *occurrence counter*: every consultation
increments it, and a spec fires either when the occurrence index is listed in
``times`` or when a per-point ``numpy`` Generator — seeded from
``(plan.seed, point)`` — draws below ``probability``.  Two runs with the
same plan, workload, and single-threaded consultation order therefore fire
identically; under concurrency the *set* of fired occurrences is still
deterministic for ``times``-based specs as long as the total consultation
count is.  The same plan object drives unit tests, ``repro loadtest
--chaos``, and the CI chaos-smoke job.

Injected failures raise :class:`InjectedFault` (a ``RuntimeError``), which
the resilience layer classifies as *transient* — exactly like a real flaky
backend — so retries, breaker trips, and degradation all engage.
"""

from __future__ import annotations

import os
import threading
import time
import zipfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Named injection points (the fault-point catalog; see docs/robustness.md)
# ---------------------------------------------------------------------------
POOL_WORKER_CRASH = "pool.worker_crash"
"""A process worker dies (``os._exit``) while holding a dispatched chunk."""

SCORER_ERROR = "service.scorer_error"
"""The warm scoring path raises mid-batch (poisoned scorer call)."""

SCORER_DELAY = "service.scorer_delay"
"""The warm scoring path stalls for ``delay_s`` (slow/hung scorer)."""

ANN_SEARCH_ERROR = "ann.search_error"
"""The ANN index raises from ``search()`` (triggers exact-search fallback)."""

FLUSHER_CRASH = "gateway.flusher_crash"
"""The gateway's background flusher thread raises (supervision test)."""

LIFECYCLE_INGEST_CRASH = "lifecycle.ingest_crash"
"""The journal writer crashes mid-ingest (possibly leaving a torn record)."""

LIFECYCLE_BUILD_CRASH = "lifecycle.build_crash"
"""The index build crashes after writing archives, before the manifest."""

LIFECYCLE_PROMOTE_CRASH = "lifecycle.promote_crash"
"""Promotion crashes after the gates pass, before the CURRENT pointer flip."""

#: One source of truth for every named injection point and what failing
#: there means — ``repro loadtest --list-fault-points`` and the fault-point
#: table in docs/robustness.md both render from this registry.
FAULT_POINTS: Dict[str, str] = {
    POOL_WORKER_CRASH: "a process-pool worker dies while holding a dispatched chunk",
    SCORER_ERROR: "the warm scoring path raises mid-batch (poisoned scorer call)",
    SCORER_DELAY: "the warm scoring path stalls for delay_s (slow or hung scorer)",
    ANN_SEARCH_ERROR: "the ANN index raises from search() (exact-search fallback)",
    FLUSHER_CRASH: "the gateway's background flusher thread raises (supervision)",
    LIFECYCLE_INGEST_CRASH: "the journal writer crashes mid-ingest (torn final record)",
    LIFECYCLE_BUILD_CRASH: "the lifecycle build crashes between archives and manifest",
    LIFECYCLE_PROMOTE_CRASH: "promotion crashes after gates pass, before the CURRENT flip",
}

POINTS: Tuple[str, ...] = tuple(FAULT_POINTS)


def describe_fault_points() -> Dict[str, str]:
    """A copy of the fault-point registry (name -> one-line description)."""
    return dict(FAULT_POINTS)


class InjectedFault(RuntimeError):
    """Raised by a firing fault point; transient by classification."""

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(f"injected fault at {point} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


@dataclass(frozen=True)
class FaultSpec:
    """When one injection point fires.

    ``times`` lists 0-based occurrence indices that fire unconditionally;
    ``probability`` adds seeded random firing on every other occurrence.
    ``max_fires`` bounds total fires (``None`` = unbounded); ``delay_s`` is
    the stall length for delay-type points.  ``hard_kill`` turns a firing
    :meth:`FaultPlan.maybe_fail` into ``os._exit(137)`` — a SIGKILL-grade
    death with no unwind, no finally blocks, no flushes — which is what the
    lifecycle crash drills use to prove recovery from real process loss.
    """

    point: str
    times: Tuple[int, ...] = ()
    probability: float = 0.0
    max_fires: Optional[int] = None
    delay_s: float = 0.0
    hard_kill: bool = False

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("point must be a non-empty injection-point name")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if any(t < 0 for t in self.times):
            raise ValueError(f"times must be >= 0, got {self.times}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")


class FaultPlan:
    """A seeded, thread-safe set of :class:`FaultSpec` entries.

    The plan is consulted via :meth:`should_fire` / :meth:`maybe_fail` /
    :meth:`maybe_delay`; unknown points never fire, so a component can
    consult unconditionally.  The plan is picklable (the lock is rebuilt),
    but process workers do **not** consult it — cross-process determinism is
    kept by consulting in the parent and shipping a crash marker (see
    ``runtime/pool.py``).
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in self._specs:
                raise ValueError(f"duplicate fault spec for point {spec.point!r}")
            self._specs[spec.point] = spec
        self._lock = threading.Lock()
        self._occurrences: Dict[str, int] = {p: 0 for p in self._specs}
        self._fires: Dict[str, int] = {p: 0 for p in self._specs}
        self._rngs: Dict[str, np.random.Generator] = {
            p: np.random.default_rng(np.random.SeedSequence([self.seed, i]))
            for i, p in enumerate(sorted(self._specs))
        }

    # -- pickling (the lock is not picklable) ---------------------------
    def __getstate__(self) -> Dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def points(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def spec(self, point: str) -> Optional[FaultSpec]:
        return self._specs.get(point)

    def should_fire(self, point: str) -> bool:
        """Advance ``point``'s occurrence counter; return True if it fires."""
        spec = self._specs.get(point)
        if spec is None:
            return False
        with self._lock:
            occurrence = self._occurrences[point]
            self._occurrences[point] = occurrence + 1
            if spec.max_fires is not None and self._fires[point] >= spec.max_fires:
                return False
            fire = occurrence in spec.times
            if not fire and spec.probability > 0.0:
                fire = bool(self._rngs[point].random() < spec.probability)
            if fire:
                self._fires[point] += 1
            return fire

    def maybe_fail(self, point: str) -> None:
        """Raise :class:`InjectedFault` if ``point`` fires this occurrence.

        A spec with ``hard_kill=True`` does not raise: it terminates the
        process on the spot with ``os._exit(137)`` (the SIGKILL exit code),
        skipping every ``finally`` block and atexit hook — the honest model
        of a machine losing the process mid-operation.
        """
        if self.should_fire(point):
            spec = self._specs[point]
            if spec.hard_kill:
                os._exit(137)
            with self._lock:
                occurrence = self._occurrences[point] - 1
            raise InjectedFault(point, occurrence)

    def maybe_delay(self, point: str) -> float:
        """Sleep ``delay_s`` if ``point`` fires; return the slept seconds."""
        spec = self._specs.get(point)
        if spec is None or not self.should_fire(point):
            return 0.0
        if spec.delay_s > 0:
            time.sleep(spec.delay_s)
        return spec.delay_s

    # ------------------------------------------------------------------
    def occurrences(self, point: str) -> int:
        with self._lock:
            return self._occurrences.get(point, 0)

    def fires(self, point: str) -> int:
        with self._lock:
            return self._fires.get(point, 0)

    def total_fires(self) -> int:
        with self._lock:
            return sum(self._fires.values())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-point ``{"occurrences": n, "fires": m}`` (stable key order)."""
        with self._lock:
            return {
                point: {
                    "occurrences": self._occurrences[point],
                    "fires": self._fires[point],
                }
                for point in sorted(self._specs)
            }


def chaos_plan(
    seed: int = 0,
    *,
    worker_crashes: int = 1,
    scorer_errors: int = 1,
    ann_failures: int = 1,
    flusher_crashes: int = 1,
    scorer_delays: int = 0,
    scorer_delay_s: float = 0.02,
    ingest_crashes: int = 0,
    build_crashes: int = 0,
    promote_crashes: int = 0,
    spacing: int = 7,
) -> FaultPlan:
    """The standard chaos mix: one of each headline failure, spread out.

    Occurrence indices are staggered (``spacing`` apart, distinct offsets
    per point) so a short load run hits every fault without two landing on
    the same batch.  Counts of 0 drop that point from the plan entirely.
    The lifecycle points default to 0 — they only fire inside a
    :class:`repro.lifecycle.LifecycleController`, not on the serving path,
    so plans driving pure load runs should not count them as pending.
    """

    def stagger(offset: int, count: int) -> Tuple[int, ...]:
        return tuple(offset + spacing * i for i in range(count))

    specs = []
    if worker_crashes:
        specs.append(FaultSpec(POOL_WORKER_CRASH, times=stagger(1, worker_crashes)))
    if scorer_errors:
        specs.append(FaultSpec(SCORER_ERROR, times=stagger(3, scorer_errors)))
    if ann_failures:
        specs.append(FaultSpec(ANN_SEARCH_ERROR, times=stagger(2, ann_failures)))
    if flusher_crashes:
        specs.append(FaultSpec(FLUSHER_CRASH, times=stagger(4, flusher_crashes)))
    if scorer_delays:
        specs.append(
            FaultSpec(
                SCORER_DELAY,
                times=stagger(5, scorer_delays),
                delay_s=scorer_delay_s,
            )
        )
    if ingest_crashes:
        specs.append(FaultSpec(LIFECYCLE_INGEST_CRASH, times=stagger(0, ingest_crashes)))
    if build_crashes:
        specs.append(FaultSpec(LIFECYCLE_BUILD_CRASH, times=stagger(0, build_crashes)))
    if promote_crashes:
        specs.append(
            FaultSpec(LIFECYCLE_PROMOTE_CRASH, times=stagger(0, promote_crashes))
        )
    return FaultPlan(specs, seed=seed)


# ---------------------------------------------------------------------------
# Archive corruption (filesystem fault — applied to artifacts, not code paths)
# ---------------------------------------------------------------------------
def corrupt_archive(path: str, array: Optional[str] = None, seed: int = 0) -> str:
    """Flip one payload byte of a stored array in an archive, in place.

    Works on both archive formats (uncompressed dir and ``.npz``): the
    metadata — including its recorded SHA-256 checksums — is left intact, so
    a subsequent checksum-verified load raises ``ArchiveCorrupted`` exactly
    as a real bit-flip or truncated write would.  Returns the name of the
    corrupted array.  ``array`` picks the victim explicitly; otherwise a
    seeded RNG chooses among the non-empty arrays.
    """
    rng = np.random.default_rng(seed)
    if os.path.isdir(path):
        names = sorted(
            f[: -len(".npy")]
            for f in os.listdir(path)
            if f.endswith(".npy") and os.path.getsize(os.path.join(path, f)) > 128
        )
        if not names:
            raise ValueError(f"no corruptible arrays in archive dir {path!r}")
        target = array if array is not None else names[int(rng.integers(len(names)))]
        file_path = os.path.join(path, target + ".npy")
        # Flip the final byte: .npy layout is header-then-raw-data, so the
        # last byte of a non-empty array's file is always payload.
        with open(file_path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            original = fh.read(1)[0]
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([original ^ 0xFF]))
        return target
    if not zipfile.is_zipfile(path):
        raise ValueError(f"{path!r} is neither an archive dir nor an npz archive")
    with np.load(path, allow_pickle=False) as archive:
        payload = {name: np.array(archive[name]) for name in archive.files}
    names = sorted(
        n for n, v in payload.items() if not n.startswith("__") and v.nbytes > 0
    )
    if not names:
        raise ValueError(f"no corruptible arrays in npz archive {path!r}")
    target = array if array is not None else names[int(rng.integers(len(names)))]
    victim = np.ascontiguousarray(payload[target])
    flat = victim.reshape(-1).view(np.uint8)
    flat[int(rng.integers(flat.size))] ^= 0xFF
    payload[target] = victim.reshape(payload[target].shape)
    np.savez_compressed(path, **payload)
    return target


def corrupt_journal(
    segment_path: str,
    record: Optional[int] = None,
    seed: int = 0,
    truncate: bool = False,
) -> int:
    """Damage one record of a journal segment file, in place.

    The journal-side sibling of :func:`corrupt_archive`.  Default mode
    flips one payload byte of record ``record`` (seeded choice when not
    given), leaving the stored CRC32 intact so a replay raises the typed
    :class:`repro.lifecycle.journal.JournalCorrupted` naming exactly that
    record.  ``truncate=True`` instead cuts the file partway through the
    *final* record — the torn-tail shape a SIGKILL mid-append leaves, which
    replay must tolerate (for an open segment) rather than error on.
    Returns the 0-based index of the damaged record.
    """
    from .lifecycle.journal import RECORD_HEADER, segment_record_offsets

    offsets = segment_record_offsets(segment_path)
    if not offsets:
        raise ValueError(f"no records to corrupt in journal segment {segment_path!r}")
    rng = np.random.default_rng(seed)
    if truncate:
        index = len(offsets) - 1
        offset, length = offsets[index]
        # Keep the header plus a strict prefix of the payload: the torn
        # shape of an append that died mid-write.
        keep = offset + RECORD_HEADER.size + int(rng.integers(max(1, length)))
        with open(segment_path, "r+b") as fh:
            fh.truncate(keep)
        return index
    index = int(rng.integers(len(offsets))) if record is None else int(record)
    if not 0 <= index < len(offsets):
        raise ValueError(f"record {index} out of range (segment has {len(offsets)})")
    offset, length = offsets[index]
    with open(segment_path, "r+b") as fh:
        fh.seek(offset + RECORD_HEADER.size + int(rng.integers(max(1, length))))
        original = fh.read(1)[0]
        fh.seek(-1, os.SEEK_CUR)
        fh.write(bytes([original ^ 0xFF]))
    return index
