"""repro — reproduction of "Price-aware Recommendation with Graph
Convolutional Networks" (PUP, ICDE 2020) in pure NumPy.

Public API tour:

* :mod:`repro.data`   — datasets, synthetic generators, quantization
* :mod:`repro.graph`  — the unified heterogeneous graph
* :mod:`repro.core`   — the PUP model and its ablation variants
* :mod:`repro.baselines` — ItemPop, BPR-MF, PaDQ, FM, DeepFM, GC-MC, NGCF
* :mod:`repro.train`  — BPR trainer
* :mod:`repro.eval`   — Recall/NDCG, cold-start protocols, user groups
* :mod:`repro.serving` — embedding export + batched top-K serving
* :mod:`repro.analysis` — CWTP entropy and price-category heatmaps
* :mod:`repro.nn`     — the NumPy autograd substrate

Quickstart::

    from repro.data import load_dataset
    from repro.core import pup_full
    from repro.train import TrainConfig, train_model
    from repro.eval import evaluate

    dataset, _ = load_dataset("yelp", scale=0.5)
    model = pup_full(dataset)
    train_model(model, dataset, TrainConfig(epochs=20))
    print(evaluate(model, dataset, ks=(50,)))
"""

__version__ = "1.0.0"

from . import analysis, baselines, core, data, eval, graph, nn, serving, train

__all__ = [
    "analysis",
    "baselines",
    "core",
    "data",
    "eval",
    "graph",
    "nn",
    "serving",
    "train",
    "__version__",
]
