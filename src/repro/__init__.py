"""repro — reproduction of "Price-aware Recommendation with Graph
Convolutional Networks" (PUP, ICDE 2020) in pure NumPy.

Public API tour:

* :mod:`repro.data`   — datasets, synthetic generators, quantization
* :mod:`repro.graph`  — the unified heterogeneous graph
* :mod:`repro.core`   — the PUP model and its ablation variants
* :mod:`repro.baselines` — ItemPop, BPR-MF, PaDQ, FM, DeepFM, GC-MC, NGCF
* :mod:`repro.train`  — BPR trainer
* :mod:`repro.eval`   — Recall/NDCG, cold-start protocols, user groups
* :mod:`repro.serving` — embedding export + batched top-K serving, plus the
  always-on concurrent gateway (admission control, dual-trigger batching,
  rate limits — docs/serving.md)
* :mod:`repro.loadgen` — deterministic zipfian/burst traffic generation and
  closed/open-loop load runners for the gateway
* :mod:`repro.experiments` — model registry, declarative experiment specs,
  artifact store (also the engine behind the ``python -m repro`` CLI)
* :mod:`repro.analysis` — CWTP entropy and price-category heatmaps
* :mod:`repro.nn`     — the NumPy autograd substrate (precision policy,
  fused kernels)
* :mod:`repro.obs`    — metrics registry (Prometheus/JSON exporters), span
  tracing (Chrome trace), live ``/metrics`` endpoint (docs/observability.md)
* :mod:`repro.profiling` — scoped timers/counters behind ``TrainResult.profile``
  (a thin view over a :class:`repro.obs.MetricsRegistry`)

Quickstart (declarative experiment API)::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec.create("pup", "yelp", scale=0.5, epochs=20)
    experiment = run_experiment(spec, artifacts_dir="runs/pup_yelp")
    print(experiment.metrics)

or layer by layer::

    from repro.data import load_dataset
    from repro.core import pup_full
    from repro.train import TrainConfig, train_model
    from repro.eval import evaluate

    dataset, _ = load_dataset("yelp", scale=0.5)
    model = pup_full(dataset)
    train_model(model, dataset, TrainConfig(epochs=20))
    print(evaluate(model, dataset, ks=(50,)))

The same pipeline is reachable from the shell: ``python -m repro train
--model pup --dataset yelp`` (see ``python -m repro --help``).
"""

__version__ = "1.2.0"

from . import analysis, baselines, core, data, eval, experiments, graph, loadgen, nn, obs, profiling, serving, train
from .data.registry import available_datasets, load_dataset
from .experiments import (
    Experiment,
    ExperimentSpec,
    ModelSpec,
    available_models,
    build_model,
)
from .experiments import run as run_experiment
from .nn import precision, set_default_dtype
from .obs import MetricsRegistry, MetricsServer, Tracer
from .profiling import Profiler

__all__ = [
    "precision",
    "set_default_dtype",
    "Profiler",
    "profiling",
    "obs",
    "MetricsRegistry",
    "MetricsServer",
    "Tracer",
    "analysis",
    "baselines",
    "core",
    "data",
    "eval",
    "experiments",
    "graph",
    "loadgen",
    "nn",
    "serving",
    "train",
    "available_datasets",
    "available_models",
    "build_model",
    "load_dataset",
    "Experiment",
    "ExperimentSpec",
    "ModelSpec",
    "run_experiment",
    "__version__",
]
