"""Analyses behind the paper's motivation figures (Fig 1, Fig 2)."""

from .cwtp import (
    cwtp_entropy,
    cwtp_per_user,
    entropy_histogram,
    entropy_of_values,
    split_users_by_consistency,
)
from .heatmap import render_ascii, row_concentration, user_price_category_heatmap

__all__ = [
    "cwtp_entropy",
    "cwtp_per_user",
    "entropy_histogram",
    "entropy_of_values",
    "split_users_by_consistency",
    "render_ascii",
    "row_concentration",
    "user_price_category_heatmap",
]
