"""CWTP — category willingness-to-pay — and its entropy (Section II-A).

The paper extends willingness-to-pay (WTP) to *category* WTP: the highest
price level a user has paid within a category.  A user active in several
categories has one CWTP per category; the entropy of those values measures
how (in)consistent the user's price sensitivity is across categories:

* entropy 0      — the same CWTP everywhere (consistent user);
* entropy log(C) — a different CWTP in every category (inconsistent user).

Fig 1 is the histogram of this entropy over all users; Table VI splits users
into consistent/inconsistent groups by it.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..data.dataset import Dataset, InteractionTable


def cwtp_per_user(dataset: Dataset, table: InteractionTable | None = None) -> Dict[int, Dict[int, int]]:
    """Mapping ``user -> {category -> max price level purchased}``.

    Defaults to the training split (price awareness must be inferred from
    history available at training time).
    """
    table = table if table is not None else dataset.train
    levels = dataset.item_price_levels
    categories = dataset.item_categories
    cwtp: Dict[int, Dict[int, int]] = {}
    for user, item in zip(table.users, table.items):
        user, item = int(user), int(item)
        category = int(categories[item])
        level = int(levels[item])
        per_user = cwtp.setdefault(user, {})
        if level > per_user.get(category, -1):
            per_user[category] = level
    return cwtp


def entropy_of_values(values: np.ndarray) -> float:
    """Shannon entropy (nats) of the empirical distribution of ``values``."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot compute entropy of an empty value set")
    __, counts = np.unique(values, return_counts=True)
    probabilities = counts / counts.sum()
    return float(-(probabilities * np.log(probabilities)).sum())


def cwtp_entropy(dataset: Dataset, table: InteractionTable | None = None) -> Dict[int, float]:
    """Per-user entropy of CWTP values across categories.

    Users who only interacted with one category have entropy 0 trivially;
    they are included (the paper's Fig 1 histogram covers all users).
    """
    cwtp = cwtp_per_user(dataset, table)
    return {
        user: entropy_of_values(np.array(list(per_category.values())))
        for user, per_category in cwtp.items()
    }


def entropy_histogram(
    dataset: Dataset, bins: int = 30, table: InteractionTable | None = None
) -> tuple:
    """(bin_edges, density) pairs reproducing Fig 1's histogram."""
    entropies = np.array(list(cwtp_entropy(dataset, table).values()))
    density, edges = np.histogram(entropies, bins=bins, density=True)
    return edges, density


def split_users_by_consistency(
    dataset: Dataset, table: InteractionTable | None = None
) -> tuple:
    """(consistent_users, inconsistent_users) via a median split on entropy.

    Users active in a single category (entropy trivially 0) land in the
    consistent group, matching the paper's framing.
    """
    entropies = cwtp_entropy(dataset, table)
    if not entropies:
        raise ValueError("no users with training interactions")
    values = np.array(list(entropies.values()))
    positive = values[values > 0]
    if positive.size == 0:
        return sorted(entropies), []
    threshold = float(np.median(positive))
    consistent = sorted(u for u, e in entropies.items() if e < threshold or e == 0.0)
    inconsistent = sorted(u for u, e in entropies.items() if e >= threshold and e > 0.0)
    return consistent, inconsistent
