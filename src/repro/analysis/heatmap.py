"""Price-category purchase heatmaps (Fig 2) and concentration statistics.

A heatmap row is a category, a column is a price level, and the cell is the
user's (normalized) purchase count.  The paper's observation is that each
row's mass concentrates on one price level.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset, InteractionTable


def user_price_category_heatmap(
    dataset: Dataset,
    user: int,
    table: InteractionTable | None = None,
    normalize: bool = True,
) -> np.ndarray:
    """Matrix of shape ``(n_categories, n_price_levels)`` for one user."""
    if not 0 <= user < dataset.n_users:
        raise IndexError(f"user {user} out of range [0, {dataset.n_users})")
    table = table if table is not None else dataset.train
    heatmap = np.zeros((dataset.n_categories, dataset.n_price_levels))
    mask = table.users == user
    items = table.items[mask]
    np.add.at(
        heatmap,
        (dataset.item_categories[items], dataset.item_price_levels[items]),
        1.0,
    )
    if normalize and heatmap.max() > 0:
        heatmap = heatmap / heatmap.max()
    return heatmap


def row_concentration(heatmap: np.ndarray) -> float:
    """Average fraction of a category row's mass on its single peak level.

    1.0 means every category's purchases sit on exactly one price level —
    the concentration the paper reads off Fig 2.  Rows with no purchases are
    skipped.
    """
    row_sums = heatmap.sum(axis=1)
    active = row_sums > 0
    if not active.any():
        raise ValueError("heatmap has no purchases")
    peaks = heatmap[active].max(axis=1)
    return float((peaks / row_sums[active]).mean())


def render_ascii(heatmap: np.ndarray, max_rows: int = 20) -> str:
    """Text rendering of a heatmap for terminal reports (benchmarks)."""
    shades = " .:-=+*#%@"
    peak = heatmap.max()
    if peak == 0:
        peak = 1.0
    lines = []
    for row in heatmap[:max_rows]:
        cells = "".join(shades[min(int(v / peak * (len(shades) - 1)), len(shades) - 1)] for v in row)
        lines.append("|" + cells + "|")
    return "\n".join(lines)
