"""The common interface every recommender in this repo implements.

Models expose two surfaces:

* :meth:`Recommender.bpr_forward` — differentiable scores for a BPR batch of
  (user, positive item, negative item) triples plus the embedding tensors to
  L2-regularize.  GCN models propagate once per batch and gather both the
  positive and the negative rows from the same propagated table.
* :meth:`Recommender.predict_scores` — a dense ``(batch_users, n_items)``
  score matrix used by the full-ranking evaluator.  No gradients.

``trainable`` lets heuristic models (ItemPop) skip the training loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..nn import Module, Tensor


@dataclass
class ScoreBranch:
    """One additive term of a factorized score function.

    A model whose full score matrix decomposes as

        S = sum_b  weight_b * ( U_b @ V_b.T + item_const_b[None, :]
                                + user_const_b[:, None] )

    can be served from frozen arrays: graph propagation (the expensive part
    of every GCN recommender here) happens once at export time and inference
    reduces to dense matmuls.  ``item_const`` carries score terms that do not
    depend on the user (e.g. PUP's ``e_i · e_p``); ``user_const`` carries
    per-user offsets (e.g. FM's first-order user bias) which do not change
    rankings but keep exported scores equal to :meth:`Recommender.predict_scores`.
    """

    user: np.ndarray  # (n_users, d)
    item: np.ndarray  # (n_items, d)
    item_const: Optional[np.ndarray] = None  # (n_items,)
    user_const: Optional[np.ndarray] = None  # (n_users,)
    weight: float = 1.0

    def __post_init__(self) -> None:
        # Always copy: a frozen branch must not alias live model weights.
        self.user = np.array(self.user, dtype=np.float64, order="C")
        self.item = np.array(self.item, dtype=np.float64, order="C")
        if self.user.ndim != 2 or self.item.ndim != 2:
            raise ValueError("user/item factors must be 2-D")
        if self.user.shape[1] != self.item.shape[1]:
            raise ValueError(
                f"user/item factor dims differ: {self.user.shape[1]} vs {self.item.shape[1]}"
            )
        if self.item_const is not None:
            self.item_const = np.array(self.item_const, dtype=np.float64)
            if self.item_const.shape != (self.item.shape[0],):
                raise ValueError("item_const must have shape (n_items,)")
        if self.user_const is not None:
            self.user_const = np.array(self.user_const, dtype=np.float64)
            if self.user_const.shape != (self.user.shape[0],):
                raise ValueError("user_const must have shape (n_users,)")


class Recommender(Module):
    """Abstract base for all models (PUP, its variants, and the baselines)."""

    #: human-readable name used in benchmark tables
    name: str = "recommender"
    #: whether the trainer should run gradient descent on this model
    trainable: bool = True

    #: how this instance can be rebuilt (registry name + hparams + seed);
    #: set by :func:`repro.experiments.build_model`, None for hand-built models
    model_spec = None

    def __init__(self, dataset: Dataset) -> None:
        super().__init__()
        self.n_users = dataset.n_users
        self.n_items = dataset.n_items
        self.n_categories = dataset.n_categories
        self.n_price_levels = dataset.n_price_levels
        self.item_categories = dataset.item_categories.copy()
        self.item_price_levels = dataset.item_price_levels.copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, dataset: Dataset, config: Dict) -> "Recommender":
        """Rebuild a model from its serialized construction config.

        ``config`` is the :meth:`~repro.experiments.ModelSpec.to_dict` form
        (``{"name": ..., "hparams": {...}, "seed": ...}``); construction goes
        through the model registry, so any registered model can be restored
        from a checkpoint's or experiment's metadata.  Called on a subclass,
        the config must resolve to that subclass.
        """
        from ..experiments.registry import ModelSpec  # deferred: avoids a cycle

        model = ModelSpec.from_dict(config).build(dataset)
        if cls is not Recommender and not isinstance(model, cls):
            raise TypeError(
                f"config names model {config.get('name')!r} which built a "
                f"{type(model).__name__}, not a {cls.__name__}"
            )
        return model

    # ------------------------------------------------------------------
    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for explicit (user, item) pairs."""
        raise NotImplementedError

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        """Default BPR batch: two score_pairs calls, no extra regularizers.

        GCN subclasses override this to share one propagation pass between
        the positive and negative scores.
        """
        return self.score_pairs(users, pos_items), self.score_pairs(users, neg_items), []

    def predict_scores(self, users: np.ndarray) -> np.ndarray:
        """Dense score matrix ``(len(users), n_items)`` for ranking (no grad)."""
        raise NotImplementedError

    def export_embeddings(self) -> List[ScoreBranch]:
        """Frozen factorization of the score function for offline serving.

        Runs any graph propagation once and returns :class:`ScoreBranch`
        terms whose sum reproduces :meth:`predict_scores` exactly.  Models
        whose score is not factorizable over (user, item) — e.g. an MLP over
        joint features — raise ``NotImplementedError``; the serving exporter
        turns that into a friendly error.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support embedding export; its score "
            "function is not factorizable into user/item branches"
        )

    def auxiliary_loss(self, users: np.ndarray, items: np.ndarray) -> "Tensor | None":
        """Optional extra training objective added to the BPR loss.

        PaDQ uses this for its collective-matrix-factorization reconstruction
        terms (rebuilding the batch users' price rows and the batch items'
        price rows); other models return None.
        """
        return None

    # ------------------------------------------------------------------
    def _check_pair_shapes(self, users: np.ndarray, items: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError(f"users/items shape mismatch: {users.shape} vs {items.shape}")
        return users, items
