"""The common interface every recommender in this repo implements.

Models expose two surfaces:

* :meth:`Recommender.bpr_forward` — differentiable scores for a BPR batch of
  (user, positive item, negative item) triples plus the embedding tensors to
  L2-regularize.  GCN models propagate once per batch and gather both the
  positive and the negative rows from the same propagated table.
* :meth:`Recommender.predict_scores` — a dense ``(batch_users, n_items)``
  score matrix used by the full-ranking evaluator.  No gradients.

``trainable`` lets heuristic models (ItemPop) skip the training loop.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..nn import Module, Tensor


class Recommender(Module):
    """Abstract base for all models (PUP, its variants, and the baselines)."""

    #: human-readable name used in benchmark tables
    name: str = "recommender"
    #: whether the trainer should run gradient descent on this model
    trainable: bool = True

    def __init__(self, dataset: Dataset) -> None:
        super().__init__()
        self.n_users = dataset.n_users
        self.n_items = dataset.n_items
        self.n_categories = dataset.n_categories
        self.n_price_levels = dataset.n_price_levels
        self.item_categories = dataset.item_categories.copy()
        self.item_price_levels = dataset.item_price_levels.copy()

    # ------------------------------------------------------------------
    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for explicit (user, item) pairs."""
        raise NotImplementedError

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        """Default BPR batch: two score_pairs calls, no extra regularizers.

        GCN subclasses override this to share one propagation pass between
        the positive and negative scores.
        """
        return self.score_pairs(users, pos_items), self.score_pairs(users, neg_items), []

    def predict_scores(self, users: np.ndarray) -> np.ndarray:
        """Dense score matrix ``(len(users), n_items)`` for ranking (no grad)."""
        raise NotImplementedError

    def auxiliary_loss(self, users: np.ndarray, items: np.ndarray) -> "Tensor | None":
        """Optional extra training objective added to the BPR loss.

        PaDQ uses this for its collective-matrix-factorization reconstruction
        terms (rebuilding the batch users' price rows and the batch items'
        price rows); other models return None.
        """
        return None

    # ------------------------------------------------------------------
    def _check_pair_shapes(self, users: np.ndarray, items: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError(f"users/items shape mismatch: {users.shape} vs {items.shape}")
        return users, items
