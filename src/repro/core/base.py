"""The common interface every recommender in this repo implements.

Models expose two surfaces:

* :meth:`Recommender.bpr_forward` — differentiable scores for a BPR batch of
  (user, positive item, negative item) triples plus the embedding tensors to
  L2-regularize.  GCN models propagate once per batch and gather both the
  positive and the negative rows from the same propagated table.
* :meth:`Recommender.predict_scores` — a dense ``(batch_users, n_items)``
  score matrix used by the full-ranking evaluator.  No gradients.

``trainable`` lets heuristic models (ItemPop) skip the training loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..nn import Module, Tensor


def _branch_array(value: np.ndarray) -> np.ndarray:
    """Canonicalize a branch factor, preserving a supported float dtype.

    float32 factors stay float32 (the precision policy threads through to
    serving); anything else — lists, integer arrays — is coerced to float64.
    No copy when the input is already C-contiguous in a supported dtype, so
    transient scoring (the default ``predict_scores``) stays zero-copy; the
    serving exporter deep-copies via :meth:`ScoreBranch.frozen_copy`.
    """
    value = np.asarray(value)
    dtype = value.dtype if value.dtype in (np.dtype(np.float32), np.dtype(np.float64)) else np.float64
    return np.ascontiguousarray(value, dtype=dtype)


@dataclass
class ScoreBranch:
    """One additive term of a factorized score function.

    A model whose full score matrix decomposes as

        S = sum_b  weight_b * ( U_b @ V_b.T + item_const_b[None, :]
                                + user_const_b[:, None] )

    can be served from frozen arrays: graph propagation (the expensive part
    of every GCN recommender here) happens once at export time and inference
    reduces to dense matmuls.  ``item_const`` carries score terms that do not
    depend on the user (e.g. PUP's ``e_i · e_p``); ``user_const`` carries
    per-user offsets (e.g. FM's first-order user bias) which do not change
    rankings but keep exported scores equal to :meth:`Recommender.predict_scores`.
    """

    user: np.ndarray  # (n_users, d)
    item: np.ndarray  # (n_items, d)
    item_const: Optional[np.ndarray] = None  # (n_items,)
    user_const: Optional[np.ndarray] = None  # (n_users,)
    weight: float = 1.0

    def __post_init__(self) -> None:
        # May alias live model weights (e.g. BPR-MF exports its embedding
        # tables directly) — fine for transient scoring; anything that
        # *freezes* a branch must go through frozen_copy(), which the
        # serving exporter does.
        self.user = _branch_array(self.user)
        self.item = _branch_array(self.item)
        if self.user.ndim != 2 or self.item.ndim != 2:
            raise ValueError("user/item factors must be 2-D")
        if self.user.shape[1] != self.item.shape[1]:
            raise ValueError(
                f"user/item factor dims differ: {self.user.shape[1]} vs {self.item.shape[1]}"
            )
        if self.item_const is not None:
            self.item_const = _branch_array(self.item_const)
            if self.item_const.shape != (self.item.shape[0],):
                raise ValueError("item_const must have shape (n_items,)")
        if self.user_const is not None:
            self.user_const = _branch_array(self.user_const)
            if self.user_const.shape != (self.user.shape[0],):
                raise ValueError("user_const must have shape (n_users,)")

    def frozen_copy(self) -> "ScoreBranch":
        """A deep copy guaranteed not to alias live model weights.

        The serving exporter freezes branches through this, so an
        :class:`~repro.serving.index.EmbeddingIndex` cannot be mutated by
        continued training of the model it came from.
        """
        return ScoreBranch(
            user=self.user.copy(),
            item=self.item.copy(),
            item_const=None if self.item_const is None else self.item_const.copy(),
            user_const=None if self.user_const is None else self.user_const.copy(),
            weight=self.weight,
        )


def branches_dtype(branches: List[ScoreBranch]) -> np.dtype:
    """The dtype :func:`score_branches` produces for these branches.

    Includes the const terms: a float64 ``item_const`` upcasts the whole
    branch sum even when the factors are float32.
    """
    parts = []
    for branch in branches:
        parts.append(branch.user.dtype)
        parts.append(branch.item.dtype)
        if branch.item_const is not None:
            parts.append(branch.item_const.dtype)
        if branch.user_const is not None:
            parts.append(branch.user_const.dtype)
    return np.result_type(*parts)


def score_branches(
    branches: List[ScoreBranch],
    users: np.ndarray,
    start: int = 0,
    stop: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dense ``(len(users), stop - start)`` scores from branch factors.

    THE scoring kernel: :meth:`Recommender.predict_scores` (live eval) and
    :class:`~repro.serving.index.EmbeddingIndex` (frozen serving) both call
    it, which is what guarantees exported indexes reproduce live scores
    bit-for-bit — same operations, same order, one implementation.

    ``out`` (and, for multi-branch factorizations, ``scratch``) lets hot
    callers reuse preallocated buffers: results are written into
    ``out[:len(users), :stop-start]`` and that view is returned, with no
    per-call allocation beyond the user-row gathers.  The in-place path
    applies the same operations in the same order as the allocating path,
    so scores are bit-identical either way.  Buffers whose dtype does not
    match the branches' score dtype are ignored (the allocating path runs
    instead), so a mismatched hint can never change results.
    """
    users = np.asarray(users, dtype=np.int64)
    if stop is None:
        stop = branches[0].item.shape[0]
    width = stop - start

    dtype = branches_dtype(branches)
    uniform = all(
        branch.user.dtype == dtype and branch.item.dtype == dtype
        and (branch.item_const is None or branch.item_const.dtype == dtype)
        and (branch.user_const is None or branch.user_const.dtype == dtype)
        for branch in branches
    )
    if (
        out is not None
        and uniform
        and out.dtype == dtype
        and out.shape[0] >= len(users)
        and out.shape[1] >= width
    ):
        view = out[: len(users), :width]
        part = view
        for i, branch in enumerate(branches):
            if i > 0:
                if scratch is None or scratch.dtype != dtype or scratch.shape[0] < len(users) or scratch.shape[1] < width:
                    scratch = np.empty_like(out)
                part = scratch[: len(users), :width]
            np.matmul(branch.user[users], branch.item[start:stop].T, out=part)
            if branch.item_const is not None:
                np.add(part, branch.item_const[None, start:stop], out=part)
            if branch.user_const is not None:
                np.add(part, branch.user_const[users][:, None], out=part)
            if branch.weight != 1.0:
                np.multiply(part, branch.weight, out=part)
            if i > 0:
                np.add(view, part, out=view)
        return view

    total: Optional[np.ndarray] = None
    for branch in branches:
        part = branch.user[users] @ branch.item[start:stop].T
        if branch.item_const is not None:
            part = part + branch.item_const[None, start:stop]
        if branch.user_const is not None:
            part = part + branch.user_const[users][:, None]
        if branch.weight != 1.0:
            part = branch.weight * part
        total = part if total is None else total + part
    return total


class Recommender(Module):
    """Abstract base for all models (PUP, its variants, and the baselines)."""

    #: human-readable name used in benchmark tables
    name: str = "recommender"
    #: whether the trainer should run gradient descent on this model
    trainable: bool = True

    #: how this instance can be rebuilt (registry name + hparams + seed);
    #: set by :func:`repro.experiments.build_model`, None for hand-built models
    model_spec = None

    def __init__(self, dataset: Dataset) -> None:
        super().__init__()
        self.n_users = dataset.n_users
        self.n_items = dataset.n_items
        self.n_categories = dataset.n_categories
        self.n_price_levels = dataset.n_price_levels
        self.item_categories = dataset.item_categories.copy()
        self.item_price_levels = dataset.item_price_levels.copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, dataset: Dataset, config: Dict) -> "Recommender":
        """Rebuild a model from its serialized construction config.

        ``config`` is the :meth:`~repro.experiments.ModelSpec.to_dict` form
        (``{"name": ..., "hparams": {...}, "seed": ...}``); construction goes
        through the model registry, so any registered model can be restored
        from a checkpoint's or experiment's metadata.  Called on a subclass,
        the config must resolve to that subclass.
        """
        from ..experiments.registry import ModelSpec  # deferred: avoids a cycle

        model = ModelSpec.from_dict(config).build(dataset)
        if cls is not Recommender and not isinstance(model, cls):
            raise TypeError(
                f"config names model {config.get('name')!r} which built a "
                f"{type(model).__name__}, not a {cls.__name__}"
            )
        return model

    # ------------------------------------------------------------------
    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Differentiable scores for explicit (user, item) pairs."""
        raise NotImplementedError

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        """Default BPR batch: two score_pairs calls, no extra regularizers.

        GCN subclasses override this to share one propagation pass between
        the positive and negative scores.
        """
        return self.score_pairs(users, pos_items), self.score_pairs(users, neg_items), []

    def predict_scores(self, users: np.ndarray) -> np.ndarray:
        """Dense score matrix ``(len(users), n_items)`` for ranking (no grad).

        The default implementation freezes the score function through
        :meth:`export_embeddings` and evaluates it with the shared
        :func:`score_branches` kernel — the same code path serving uses —
        so any model with a factorizable score gets live evaluation for
        free, guaranteed consistent with its exported index.  Models with
        non-factorizable scorers (DeepFM) override this directly.
        """
        return score_branches(self.export_embeddings(), users)

    def export_embeddings(self) -> List[ScoreBranch]:
        """Frozen factorization of the score function for offline serving.

        Runs any graph propagation once and returns :class:`ScoreBranch`
        terms whose sum reproduces :meth:`predict_scores` exactly.  Models
        whose score is not factorizable over (user, item) — e.g. an MLP over
        joint features — raise ``NotImplementedError``; the serving exporter
        turns that into a friendly error.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support embedding export; its score "
            "function is not factorizable into user/item branches"
        )

    def auxiliary_loss(self, users: np.ndarray, items: np.ndarray) -> "Tensor | None":
        """Optional extra training objective added to the BPR loss.

        PaDQ uses this for its collective-matrix-factorization reconstruction
        terms (rebuilding the batch users' price rows and the batch items'
        price rows); other models return None.
        """
        return None

    # ------------------------------------------------------------------
    def _check_pair_shapes(self, users: np.ndarray, items: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError(f"users/items shape mismatch: {users.shape} vs {items.shape}")
        return users, items
