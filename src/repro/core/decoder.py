"""The pairwise-interaction (FM-style) decoder of Section III-C / IV-B.

Given a list of per-example embedding tensors ``[e_1, ..., e_k]`` (all of
shape ``(batch, dim)``) the decoder computes the sum of inner products over
every unordered pair:

    sum_{f < g} e_f · e_g  =  1/2 [ (sum_f e_f)^2 - sum_f e_f^2 ]   (Eq. 7)

which is linear in the number of features — the classic FM trick the paper
highlights in Section IV-B.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn import Tensor, stack_sum


def pairwise_interaction(embeddings: Sequence[Tensor]) -> Tensor:
    """Sum of all pairwise inner products per row; returns shape ``(batch,)``."""
    embeddings = list(embeddings)
    if len(embeddings) < 2:
        raise ValueError(f"need at least two feature embeddings, got {len(embeddings)}")
    shapes = {e.shape for e in embeddings}
    if len(shapes) != 1:
        raise ValueError(f"all embeddings must share a shape, got {sorted(shapes)}")

    total = stack_sum(embeddings)
    square_of_sum = (total * total).sum(axis=1)
    sum_of_squares = stack_sum([e * e for e in embeddings]).sum(axis=1)
    return (square_of_sum - sum_of_squares) * 0.5


def pairwise_interaction_numpy(embeddings: Sequence[np.ndarray]) -> np.ndarray:
    """NumPy twin of :func:`pairwise_interaction` for inference paths."""
    embeddings = list(embeddings)
    if len(embeddings) < 2:
        raise ValueError(f"need at least two feature embeddings, got {len(embeddings)}")
    total = np.add.reduce(embeddings)
    square_of_sum = (total * total).sum(axis=-1)
    sum_of_squares = np.add.reduce([e * e for e in embeddings]).sum(axis=-1)
    return 0.5 * (square_of_sum - sum_of_squares)
