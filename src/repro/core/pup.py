"""PUP — Price-aware User Preference-modeling (the paper's contribution).

The full model is two encoder/decoder branches over two copies of the unified
heterogeneous graph:

* **global branch** — decoder over {user, item, price}:
  ``s_g = e_u·e_i + e_u·e_p + e_i·e_p``.  Category nodes participate in the
  propagation (they regularize item embeddings) but not the decoder.
* **category branch** — decoder over {user, category, price}:
  ``s_c = e_u·e_c + e_u·e_p + e_c·e_p``.  Item nodes only bridge.

Final score ``s = s_g + alpha * s_c`` (Eq. 3).  The embedding budget is split
between branches (``global_dim`` / ``category_dim`` — Table V studies this
allocation).

Setting ``use_price`` / ``use_category`` to False produces the paper's slim
variants (Table III and PUP− in Fig 6); with both False the model degrades
to a GCN-encoded matrix factorization.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..graph.hetero import HeteroGraph
from ..nn import Tensor
from .base import Recommender, ScoreBranch
from .decoder import pairwise_interaction, pairwise_interaction_numpy
from .encoder import GCNEncoder


class PUP(Recommender):
    """The two-branch price-aware GCN recommender."""

    name = "PUP"

    def __init__(
        self,
        dataset: Dataset,
        global_dim: int = 48,
        category_dim: int = 16,
        alpha: float = 1.0,
        dropout: float = 0.1,
        n_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
        use_price: bool = True,
        use_category: bool = True,
        self_loops: bool = True,
        user_profiles: Optional[np.ndarray] = None,
        n_profiles: int = 0,
    ) -> None:
        super().__init__(dataset)
        if global_dim < 1:
            raise ValueError(f"global_dim must be >= 1, got {global_dim}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        rng = rng or np.random.default_rng()
        self.alpha = alpha
        self.use_price = use_price
        self.use_category = use_category
        self.two_branch = use_price and use_category

        profile_kwargs = dict(user_profiles=user_profiles, n_profiles=n_profiles)
        if self.two_branch:
            if category_dim < 1:
                raise ValueError(f"category_dim must be >= 1, got {category_dim}")
            graph_kwargs = dict(include_prices=True, include_categories=True, **profile_kwargs)
            # Both branches propagate over the *same* structure; sharing one
            # HeteroGraph lets its adjacency/transpose caches serve both
            # encoders instead of being built twice.
            self.global_graph = HeteroGraph(dataset, **graph_kwargs)
            self.category_graph = self.global_graph
            self.global_encoder = GCNEncoder(
                self.global_graph, global_dim, rng=rng, dropout=dropout,
                n_layers=n_layers, self_loops=self_loops,
            )
            self.category_encoder = GCNEncoder(
                self.category_graph, category_dim, rng=rng, dropout=dropout,
                n_layers=n_layers, self_loops=self_loops,
            )
        else:
            # Slim variants put the whole embedding budget in one branch and
            # drop the unused attribute's edges from the graph.
            dim = global_dim + category_dim
            self.global_graph = HeteroGraph(
                dataset,
                include_prices=use_price,
                include_categories=use_category,
                **profile_kwargs,
            )
            self.category_graph = None
            self.global_encoder = GCNEncoder(
                self.global_graph, dim, rng=rng, dropout=dropout,
                n_layers=n_layers, self_loops=self_loops,
            )
            self.category_encoder = None

        space = self.global_graph.space
        self._user_nodes = np.arange(self.n_users)
        self._item_nodes = space.item(np.arange(self.n_items))
        self._category_nodes_of_item = space.category(self.item_categories)
        self._price_nodes_of_item = space.price(self.item_price_levels)

    # ------------------------------------------------------------------
    # Training path (autograd)
    # ------------------------------------------------------------------
    def _branch_features(
        self, table: Tensor, users: np.ndarray, items: np.ndarray, branch: str
    ) -> List[Tensor]:
        """Gather the decoder's feature embeddings for one branch.

        The full-graph propagation (``table``) happens once per step in
        :meth:`GCNEncoder.propagate`; this is the per-batch ``gather`` half
        of the encoder's propagate/gather split.
        """
        gather = GCNEncoder.gather
        user_rows = gather(table, users)
        if branch == "global":
            features = [user_rows, gather(table, self._item_nodes[items])]
            if self.use_price:
                features.append(gather(table, self._price_nodes_of_item[items]))
            if self.use_category and not self.two_branch:
                # Slim "w/ c" variant folds the category into the one decoder;
                # the full model handles categories in the dedicated branch.
                features.append(gather(table, self._category_nodes_of_item[items]))
            return features
        # category branch: user, category, price (items only bridge)
        return [
            user_rows,
            gather(table, self._category_nodes_of_item[items]),
            gather(table, self._price_nodes_of_item[items]),
        ]

    def _score_from_tables(
        self,
        global_table: Tensor,
        category_table: Optional[Tensor],
        users: np.ndarray,
        items: np.ndarray,
    ) -> Tuple[Tensor, List[Tensor]]:
        global_feats = self._branch_features(global_table, users, items, "global")
        if len(global_feats) == 2:
            score = (global_feats[0] * global_feats[1]).sum(axis=1)
        else:
            score = pairwise_interaction(global_feats)
        reg = list(global_feats)
        if self.two_branch:
            cat_feats = self._branch_features(category_table, users, items, "category")
            score = score + pairwise_interaction(cat_feats) * self.alpha
            reg.extend(cat_feats)
        return score, reg

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users, items = self._check_pair_shapes(users, items)
        global_table = self.global_encoder()
        category_table = self.category_encoder() if self.two_branch else None
        score, __ = self._score_from_tables(global_table, category_table, users, items)
        return score

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        """One propagation pass shared by positive and negative scores."""
        users, pos_items = self._check_pair_shapes(users, pos_items)
        __, neg_items = self._check_pair_shapes(users, neg_items)
        global_table = self.global_encoder()
        category_table = self.category_encoder() if self.two_branch else None
        pos_score, pos_reg = self._score_from_tables(global_table, category_table, users, pos_items)
        neg_score, neg_reg = self._score_from_tables(global_table, category_table, users, neg_items)
        return pos_score, neg_score, pos_reg + neg_reg

    # ------------------------------------------------------------------
    # Inference path (shared with serving)
    # ------------------------------------------------------------------
    # ``predict_scores`` is inherited from :class:`Recommender`: it freezes
    # the score function via :meth:`export_embeddings` and evaluates it with
    # the shared ``score_branches`` kernel, so live evaluation and the
    # serving index are one code path (bit-identical by construction).

    def export_embeddings(self) -> List[ScoreBranch]:
        """Freeze both branches after one propagation pass.

        The branch factors fold the per-item constants (``e_i · e_p`` etc.)
        so that scoring reduces to dense matmuls over the frozen arrays.
        """
        table = self.global_encoder.propagate_inference()
        item_emb = table[self._item_nodes]
        user_emb = table[self._user_nodes]

        if self.two_branch:
            price_emb = table[self._price_nodes_of_item]
            global_branch = ScoreBranch(
                user=user_emb,
                item=item_emb + price_emb,
                item_const=(item_emb * price_emb).sum(axis=1),
            )
            cat_table = self.category_encoder.propagate_inference()
            cat_emb = cat_table[self._category_nodes_of_item]
            cat_price = cat_table[self._price_nodes_of_item]
            category_branch = ScoreBranch(
                user=cat_table[self._user_nodes],
                item=cat_emb + cat_price,
                item_const=(cat_emb * cat_price).sum(axis=1),
                weight=self.alpha,
            )
            return [global_branch, category_branch]

        extras = []
        if self.use_price:
            extras.append(table[self._price_nodes_of_item])
        if self.use_category:
            extras.append(table[self._category_nodes_of_item])
        item_side = item_emb + np.add.reduce(extras) if extras else item_emb
        if extras:
            const = pairwise_interaction_numpy([item_emb] + extras)
        else:
            const = np.zeros(self.n_items, dtype=table.dtype)
        return [ScoreBranch(user=user_emb, item=item_side, item_const=const)]
