"""The graph convolutional encoder of Section III-B / IV-A.

One branch = one embedding table over all heterogeneous nodes plus one
propagation step

    F_out = tanh( Â · W )          (Eq. 6, with F_in = I so F_in·W = W)

where ``Â = row_normalize(A + I)`` (Eq. 5).  Feature-level dropout
(Section IV-C) is applied to the propagated representations at training
time.  ``n_layers`` stacks the propagation (the paper uses one layer; more
are supported for ablations).

The forward pass is split in two so the trainer and the serving exporter
share one code path:

* :meth:`GCNEncoder.propagate` — the full-graph propagation, producing the
  complete node table (autograd :class:`~repro.nn.Tensor` for training,
  plain NumPy via :meth:`propagate_inference` for export/eval);
* :meth:`GCNEncoder.gather` — per-batch row lookup from a propagated table.

``Â`` and its transpose (needed by every backward pass) are constant
subgraphs: they are built once per encoder, in the encoder's precision,
instead of per forward call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.hetero import HeteroGraph
from ..nn import Dropout, Embedding, Module, Tensor


class GCNEncoder(Module):
    """Embedding layer + embedding propagation + neighbor aggregation."""

    def __init__(
        self,
        graph: HeteroGraph,
        dim: int,
        rng: Optional[np.random.Generator] = None,
        dropout: float = 0.1,
        n_layers: int = 1,
        embedding_std: float = 0.1,
        self_loops: bool = True,
    ) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError(f"embedding dim must be >= 1, got {dim}")
        if n_layers < 0:
            raise ValueError(f"n_layers must be >= 0, got {n_layers}")
        rng = rng or np.random.default_rng()
        self.graph = graph
        self.dim = dim
        self.n_layers = n_layers
        self.embedding = Embedding(graph.n_nodes, dim, rng=rng, std=embedding_std)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        dtype = self.embedding.weight.data.dtype
        self._adjacency = graph.normalized_adjacency(self_loops=self_loops, dtype=dtype)
        self._adjacency_t = graph.normalized_adjacency_transpose(
            self_loops=self_loops, dtype=dtype
        )

    def propagate(self) -> Tensor:
        """Propagated node representations, shape ``(n_nodes, dim)``.

        With ``n_layers=0`` this degrades to the raw embedding table (a
        useful ablation: PUP without graph convolution).
        """
        out = self.embedding.all()
        for _ in range(self.n_layers):
            out = out.sparse_matmul(self._adjacency, transpose=self._adjacency_t).tanh()
        if self.dropout is not None:
            out = self.dropout(out)
        return out

    def __call__(self) -> Tensor:
        return self.propagate()

    @staticmethod
    def gather(table: Tensor, node_ids: np.ndarray) -> Tensor:
        """Batch lookup into a propagated table (gradient-scattering)."""
        return table.gather_rows(node_ids)

    def propagate_inference(self) -> np.ndarray:
        """Pure-NumPy forward pass for evaluation (no graph recording)."""
        out = self.embedding.weight.data
        for _ in range(self.n_layers):
            out = np.tanh(self._adjacency @ out)
        return out
