"""Value-aware recommendation — the paper's Section VII extension.

The conclusion sketches extending price-aware to *value-aware*
recommendation: using PUP's purchase-probability estimates to maximize
expected revenue rather than raw relevance.  This module implements that
extension:

* :class:`ValueAwareReranker` converts model scores into purchase
  probabilities (softmax over the candidate pool) and re-ranks by expected
  revenue ``p(purchase) * price``, with a ``relevance_weight`` knob that
  interpolates between pure relevance ranking and pure revenue ranking;
* :func:`realized_revenue_at_k` measures the revenue actually captured by a
  ranking against held-out purchases — the metric a platform optimizes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..eval.topk import NEG_INF, topk_indices
from .base import Recommender


class ValueAwareReranker:
    """Re-rank a trained recommender's output by expected revenue.

    Parameters
    ----------
    model:
        A trained :class:`Recommender`.
    dataset:
        Provides item raw prices and train positives (always excluded).
    relevance_weight:
        1.0 ranks purely by purchase probability (the plain recommender);
        0.0 ranks purely by expected revenue.  Intermediate values trade
        traffic for revenue — the platform's dial.
    temperature:
        Softmax temperature for converting scores to probabilities; larger
        values flatten the distribution.
    """

    def __init__(
        self,
        model: Recommender,
        dataset: Dataset,
        relevance_weight: float = 0.5,
        temperature: float = 1.0,
    ) -> None:
        if not 0.0 <= relevance_weight <= 1.0:
            raise ValueError(f"relevance_weight must be in [0, 1], got {relevance_weight}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.model = model
        self.dataset = dataset
        self.relevance_weight = relevance_weight
        self.temperature = temperature

    # ------------------------------------------------------------------
    def purchase_probabilities(self, users: Sequence[int]) -> np.ndarray:
        """Softmax purchase probabilities over non-train items per user."""
        users = np.asarray(list(users), dtype=np.int64)
        scores = np.array(self.model.predict_scores(users), dtype=np.float64)
        train_pos = self.dataset.train_positive_sets()
        for row, user in enumerate(users):
            positives = list(train_pos.get(int(user), ()))
            if positives:
                scores[row, positives] = NEG_INF
        scores = scores / self.temperature
        scores -= scores.max(axis=1, keepdims=True)
        probabilities = np.exp(scores)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        return probabilities

    def expected_revenue(self, users: Sequence[int]) -> np.ndarray:
        """``p(purchase) * raw_price`` per (user, item)."""
        probabilities = self.purchase_probabilities(users)
        return probabilities * self.dataset.catalog.raw_prices[None, :]

    def rerank(self, users: Sequence[int], k: int = 50) -> Dict[int, np.ndarray]:
        """Top-k item ids per user under the blended objective."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        users = [int(u) for u in users]
        probabilities = self.purchase_probabilities(users)
        revenue = probabilities * self.dataset.catalog.raw_prices[None, :]

        # Blend normalized objectives so the weight is scale-free.
        def normalize(matrix: np.ndarray) -> np.ndarray:
            lo = matrix.min(axis=1, keepdims=True)
            hi = matrix.max(axis=1, keepdims=True)
            span = np.where(hi > lo, hi - lo, 1.0)
            return (matrix - lo) / span

        blended = (
            self.relevance_weight * normalize(probabilities)
            + (1.0 - self.relevance_weight) * normalize(revenue)
        )
        rankings: Dict[int, np.ndarray] = {}
        for row, user in enumerate(users):
            rankings[user] = topk_indices(blended[row], k)
        return rankings


def realized_revenue_at_k(
    dataset: Dataset,
    rankings: Dict[int, np.ndarray],
    k: int = 50,
    split: str = "test",
    positives: Optional[Dict[int, set]] = None,
) -> float:
    """Average raw-price revenue captured by the top-k per user.

    An item contributes its price if the user actually purchased it in the
    held-out split and it appears in the top-k (i.e. the recommendation
    would have converted).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    positives = positives if positives is not None else dataset.split_positive_sets(split)
    revenues = []
    for user, ranked in rankings.items():
        relevant = positives.get(int(user))
        if not relevant:
            continue
        top = ranked[:k]
        revenue = sum(
            float(dataset.catalog.raw_prices[int(item)]) for item in top if int(item) in relevant
        )
        revenues.append(revenue)
    if not revenues:
        raise ValueError("no ranked users have held-out purchases")
    return float(np.mean(revenues))
