"""Core library: the PUP model, its encoder/decoder, and ablation variants."""

from .base import Recommender, ScoreBranch
from .encoder import GCNEncoder
from .decoder import pairwise_interaction, pairwise_interaction_numpy
from .pup import PUP
from .value_aware import ValueAwareReranker, realized_revenue_at_k
from .variants import (
    VARIANTS,
    pup_full,
    pup_minus,
    pup_with_category,
    pup_with_price,
    pup_without_price_and_category,
)

__all__ = [
    "Recommender",
    "ScoreBranch",
    "GCNEncoder",
    "pairwise_interaction",
    "pairwise_interaction_numpy",
    "PUP",
    "VARIANTS",
    "pup_full",
    "pup_minus",
    "pup_with_category",
    "pup_with_price",
    "pup_without_price_and_category",
    "ValueAwareReranker",
    "realized_revenue_at_k",
]
