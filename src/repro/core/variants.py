"""Named constructors for the PUP ablation variants used in the paper.

Table III compares the full model with three slim versions; Fig 6 uses
"PUP−" (category nodes removed).  All of them are `PUP` instances with the
price/category factors toggled:

============  =========  ============  =================================
variant       use_price  use_category  decoder features
============  =========  ============  =================================
PUP           yes        yes           two branches: {u,i,p} and {u,c,p}
PUP w/ p      yes        no            single branch {u, i, p}
PUP w/ c      no         yes           single branch {u, i, c}
PUP w/o c,p   no         no            single branch {u, i} (GCN-MF)
PUP−          yes        no            alias of "PUP w/ p"
============  =========  ============  =================================
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import Dataset
from ..experiments.registry import register_model
from .pup import PUP


@register_model("pup", aliases=("PUP", "pup-full"), display="PUP")
def pup_full(dataset: Dataset, rng: Optional[np.random.Generator] = None, **kwargs) -> PUP:
    """The complete two-branch PUP model."""
    model = PUP(dataset, rng=rng, use_price=True, use_category=True, **kwargs)
    model.name = "PUP"
    return model


@register_model("pup-p", aliases=("PUP w/ p", "pup-with-price"), display="PUP w/ p")
def pup_with_price(dataset: Dataset, rng: Optional[np.random.Generator] = None, **kwargs) -> PUP:
    """Price kept, category removed — a single {u, i, p} branch."""
    model = PUP(dataset, rng=rng, use_price=True, use_category=False, **kwargs)
    model.name = "PUP w/ p"
    return model


@register_model("pup-c", aliases=("PUP w/ c", "pup-with-category"), display="PUP w/ c")
def pup_with_category(dataset: Dataset, rng: Optional[np.random.Generator] = None, **kwargs) -> PUP:
    """Category kept, price removed — a single {u, i, c} branch."""
    model = PUP(dataset, rng=rng, use_price=False, use_category=True, **kwargs)
    model.name = "PUP w/ c"
    return model


@register_model(
    "pup-mf",
    aliases=("PUP w/o c,p", "pup-without-price-and-category"),
    display="PUP w/o c,p",
)
def pup_without_price_and_category(
    dataset: Dataset, rng: Optional[np.random.Generator] = None, **kwargs
) -> PUP:
    """Both factors removed: GCN-encoded matrix factorization."""
    model = PUP(dataset, rng=rng, use_price=False, use_category=False, **kwargs)
    model.name = "PUP w/o c,p"
    return model


@register_model("pup-minus", aliases=("PUP-",), display="PUP-")
def pup_minus(dataset: Dataset, rng: Optional[np.random.Generator] = None, **kwargs) -> PUP:
    """PUP− from the cold-start study (Fig 6): category nodes removed."""
    model = pup_with_price(dataset, rng=rng, **kwargs)
    model.name = "PUP-"
    return model


VARIANTS = {
    "PUP": pup_full,
    "PUP w/ p": pup_with_price,
    "PUP w/ c": pup_with_category,
    "PUP w/o c,p": pup_without_price_and_category,
    "PUP-": pup_minus,
}
