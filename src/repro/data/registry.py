"""Named dataset registry with in-process caching.

Benchmarks and examples refer to datasets by name ('yelp', 'beibei',
'amazon'); the registry builds them lazily and caches by (name, seed, scale)
so nine benchmark files training on the same dataset do not regenerate it.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from .dataset import Dataset
from .synthetic import (
    SyntheticGroundTruth,
    make_amazon_like,
    make_beibei_like,
    make_yelp_like,
)

_BUILDERS: Dict[str, Callable] = {
    "yelp": make_yelp_like,
    "beibei": make_beibei_like,
    "amazon": make_amazon_like,
}

_CACHE: Dict[Tuple, Tuple[Dataset, SyntheticGroundTruth]] = {}


def available_datasets() -> list:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_BUILDERS)


def load_dataset(
    name: str, seed: int = 0, scale: float = 1.0, **kwargs
) -> Tuple[Dataset, SyntheticGroundTruth]:
    """Build (or return cached) dataset + ground truth by name."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    key = (name, seed, scale, tuple(sorted(kwargs.items())))
    if key not in _CACHE:
        _CACHE[key] = _BUILDERS[name](seed=seed, scale=scale, **kwargs)
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached datasets (used by tests)."""
    _CACHE.clear()
