"""Named dataset registry with in-process caching.

Benchmarks and examples refer to datasets by name ('yelp', 'beibei',
'amazon'); the registry builds them lazily and caches by (name, seed, scale)
so nine benchmark files training on the same dataset do not regenerate it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from .dataset import Dataset
from .synthetic import (
    SyntheticGroundTruth,
    make_amazon_like,
    make_beibei_like,
    make_yelp_like,
)

_BUILDERS: Dict[str, Callable] = {
    "yelp": make_yelp_like,
    "beibei": make_beibei_like,
    "amazon": make_amazon_like,
}

_CACHE: Dict[Tuple, Tuple[Dataset, SyntheticGroundTruth]] = {}


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_BUILDERS)


def _canonical(value: Any) -> Any:
    """Hashable canonical form of one kwarg value for the cache key.

    Builder kwargs may legitimately be lists, arrays, or nested dicts
    (e.g. a custom price-level table); ``tuple(sorted(kwargs.items()))``
    alone would produce an unhashable key for those.  Sequences of distinct
    container types map to distinct tags so ``[0, 1]`` and ``(0, 1)`` do
    not collide with each other's cache entries.
    """
    if isinstance(value, dict):
        items = sorted(((type(k).__name__, str(k)), _canonical(v)) for k, v in value.items())
        return ("dict", tuple(items))
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, str(value.dtype), value.tobytes())
    if isinstance(value, (list, tuple)):
        return (type(value).__name__, tuple(_canonical(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(_canonical(v) for v in value)))
    if isinstance(value, np.generic):
        return value.item()
    return value


def cache_key(name: str, seed: int, scale: float, kwargs: Dict[str, Any]) -> Tuple:
    """The hashable identity of one :func:`load_dataset` call."""
    return (name, seed, scale, tuple((k, _canonical(v)) for k, v in sorted(kwargs.items())))


def load_dataset(
    name: str, seed: int = 0, scale: float = 1.0, **kwargs
) -> Tuple[Dataset, SyntheticGroundTruth]:
    """Build (or return cached) dataset + ground truth by name."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    key = cache_key(name, seed, scale, kwargs)
    if key not in _CACHE:
        _CACHE[key] = _BUILDERS[name](seed=seed, scale=scale, **kwargs)
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached datasets (used by tests)."""
    _CACHE.clear()
