"""Price discretization: uniform and rank-based quantization.

Section II-B defines *uniform quantization*: a price ``x`` in a category with
range ``[lo, hi]`` maps to level ``floor((x - lo) / (hi - lo) * L)`` (clipped
to ``L - 1`` at the top).  Section V-C2 introduces *rank-based quantization*:
rank items by price within their category, convert to a percentile, multiply
by ``L`` and take the integer part — which handles the heavy-tailed price
distributions found on real platforms (Table IV).
"""

from __future__ import annotations

import numpy as np


def _validate(prices: np.ndarray, categories: np.ndarray, n_levels: int) -> tuple:
    prices = np.asarray(prices, dtype=np.float64)
    categories = np.asarray(categories, dtype=np.int64)
    if prices.shape != categories.shape:
        raise ValueError(f"prices/categories shape mismatch: {prices.shape} vs {categories.shape}")
    if n_levels < 1:
        raise ValueError(f"need at least one price level, got {n_levels}")
    if prices.size and np.any(prices < 0):
        raise ValueError("prices must be non-negative")
    return prices, categories


def uniform_quantize(
    prices: np.ndarray,
    categories: np.ndarray,
    n_levels: int,
    per_category: bool = True,
) -> np.ndarray:
    """Uniform quantization of prices into ``n_levels`` levels.

    With ``per_category=True`` (the paper's formulation — the mobile-phone
    example normalizes by the category's own price range) each category is
    normalized independently; otherwise a single global range is used.

    Degenerate categories where every item has the same price map to level 0.
    """
    prices, categories = _validate(prices, categories, n_levels)
    levels = np.zeros(prices.shape, dtype=np.int64)
    if prices.size == 0:
        return levels

    if per_category:
        for category in np.unique(categories):
            mask = categories == category
            levels[mask] = _uniform_levels(prices[mask], n_levels)
    else:
        levels = _uniform_levels(prices, n_levels)
    return levels


def _uniform_levels(values: np.ndarray, n_levels: int) -> np.ndarray:
    lo, hi = values.min(), values.max()
    if hi == lo:
        return np.zeros(values.shape, dtype=np.int64)
    normalized = (values - lo) / (hi - lo)
    return np.minimum((normalized * n_levels).astype(np.int64), n_levels - 1)


def rank_quantize(
    prices: np.ndarray,
    categories: np.ndarray,
    n_levels: int,
) -> np.ndarray:
    """Rank-based quantization: percentile of price *within category* -> level.

    Ties share the average rank so identical prices land on the same level.
    The resulting levels are near-uniformly populated regardless of the raw
    price distribution, which is the property Table IV credits for the win
    over uniform quantization.
    """
    prices, categories = _validate(prices, categories, n_levels)
    levels = np.zeros(prices.shape, dtype=np.int64)
    if prices.size == 0:
        return levels

    for category in np.unique(categories):
        mask = categories == category
        levels[mask] = _rank_levels(prices[mask], n_levels)
    return levels


def _rank_levels(values: np.ndarray, n_levels: int) -> np.ndarray:
    count = len(values)
    if count == 1:
        return np.zeros(1, dtype=np.int64)
    # Average rank for ties, then percentile in [0, 1).
    order = np.argsort(values, kind="stable")
    ranks = np.empty(count, dtype=np.float64)
    ranks[order] = np.arange(count, dtype=np.float64)
    # Average the ranks of tied values.
    unique_vals, inverse = np.unique(values, return_inverse=True)
    sums = np.zeros(len(unique_vals))
    counts = np.zeros(len(unique_vals))
    np.add.at(sums, inverse, ranks)
    np.add.at(counts, inverse, 1.0)
    ranks = (sums / counts)[inverse]
    percentile = ranks / count
    return np.minimum((percentile * n_levels).astype(np.int64), n_levels - 1)


def quantize(
    prices: np.ndarray,
    categories: np.ndarray,
    n_levels: int,
    method: str = "uniform",
) -> np.ndarray:
    """Dispatch on quantization ``method`` ('uniform' or 'rank')."""
    if method == "uniform":
        return uniform_quantize(prices, categories, n_levels)
    if method == "rank":
        return rank_quantize(prices, categories, n_levels)
    raise ValueError(f"unknown quantization method {method!r}; expected 'uniform' or 'rank'")
