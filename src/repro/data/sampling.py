"""Negative sampling for BPR training.

For each observed (user, item) pair the sampler draws ``rate`` unobserved
items uniformly (the paper uses negative sampling rate 1).  Rejection
sampling is vectorized: draw candidate items for the whole batch, re-draw
only the collisions with the user's training positives.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .dataset import Dataset


class NegativeSampler:
    """Draws (user, pos_item, neg_item) triples from a dataset's train split."""

    def __init__(self, dataset: Dataset, rng: np.random.Generator, rate: int = 1) -> None:
        if rate < 1:
            raise ValueError(f"negative sampling rate must be >= 1, got {rate}")
        self.dataset = dataset
        self.rng = rng
        self.rate = rate
        self._pos = dataset.train_positive_sets()
        if dataset.n_items <= 1:
            raise ValueError("negative sampling needs at least 2 items")
        # Guard against pathological users who interacted with everything.
        for user, items in self._pos.items():
            if len(items) >= dataset.n_items:
                raise ValueError(f"user {user} has interacted with every item; cannot sample")

    def sample_negatives(self, users: np.ndarray) -> np.ndarray:
        """One negative item per user in ``users`` (vectorized rejection)."""
        users = np.asarray(users, dtype=np.int64)
        negatives = self.rng.integers(0, self.dataset.n_items, size=len(users))
        pending = np.array(
            [item in self._pos.get(int(user), ()) for user, item in zip(users, negatives)]
        )
        # Each round re-draws only colliding entries; terminates with
        # probability 1 because every user has at least one non-positive item.
        while pending.any():
            redraw = self.rng.integers(0, self.dataset.n_items, size=int(pending.sum()))
            negatives[pending] = redraw
            idx = np.flatnonzero(pending)
            still = np.array(
                [negatives[i] in self._pos.get(int(users[i]), ()) for i in idx]
            )
            pending[idx] = still
        return negatives

    def epoch_batches(
        self, batch_size: int, shuffle: bool = True
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield (users, pos_items, neg_items) mini-batches covering the train split.

        With ``rate > 1`` the positive pairs are repeated ``rate`` times, each
        repetition paired with an independent negative draw.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        users = np.repeat(self.dataset.train.users, self.rate)
        items = np.repeat(self.dataset.train.items, self.rate)
        order = self.rng.permutation(len(users)) if shuffle else np.arange(len(users))
        users, items = users[order], items[order]
        for start in range(0, len(users), batch_size):
            batch_users = users[start : start + batch_size]
            batch_pos = items[start : start + batch_size]
            batch_neg = self.sample_negatives(batch_users)
            yield batch_users, batch_pos, batch_neg
