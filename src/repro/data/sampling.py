"""Negative sampling for BPR training.

For each observed (user, item) pair the sampler draws ``rate`` unobserved
items uniformly (the paper uses negative sampling rate 1).  Rejection
sampling is vectorized end to end: candidate items are drawn for the whole
batch, membership in the user's training positives is tested against a
sorted packed-key array with ``np.searchsorted`` (no per-element Python
loop), and only the collisions are re-drawn.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .dataset import Dataset


class NegativeSampler:
    """Draws (user, pos_item, neg_item) triples from a dataset's train split."""

    def __init__(self, dataset: Dataset, rng: np.random.Generator, rate: int = 1) -> None:
        if rate < 1:
            raise ValueError(f"negative sampling rate must be >= 1, got {rate}")
        self.dataset = dataset
        self.rng = rng
        self.rate = rate
        if dataset.n_items <= 1:
            raise ValueError("negative sampling needs at least 2 items")
        # Packed-key positive set: (user, item) -> user * n_items + item,
        # deduplicated and sorted, so a batch membership test is one
        # searchsorted over int64 keys.  Equivalent to a CSR (indptr,
        # indices) pair but with the row lookup folded into the key.
        n_items = dataset.n_items
        keys = dataset.train.users.astype(np.int64) * n_items + dataset.train.items
        self._pos_keys = np.unique(keys)
        # Guard against pathological users who interacted with everything.
        counts = np.bincount(self._pos_keys // n_items, minlength=dataset.n_users)
        if counts.size and counts.max() >= n_items:
            worst = int(np.argmax(counts))
            raise ValueError(f"user {worst} has interacted with every item; cannot sample")

    def _is_positive(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorized membership of (user, item) pairs in the train positives."""
        if len(self._pos_keys) == 0:
            return np.zeros(len(users), dtype=bool)
        candidates = users * np.int64(self.dataset.n_items) + items
        slots = np.searchsorted(self._pos_keys, candidates)
        slots_clipped = np.minimum(slots, len(self._pos_keys) - 1)
        return (slots < len(self._pos_keys)) & (self._pos_keys[slots_clipped] == candidates)

    def sample_negatives(self, users: np.ndarray) -> np.ndarray:
        """One negative item per user in ``users`` (vectorized rejection)."""
        users = np.asarray(users, dtype=np.int64)
        negatives = self.rng.integers(0, self.dataset.n_items, size=len(users))
        pending = self._is_positive(users, negatives)
        # Each round re-draws only colliding entries; terminates with
        # probability 1 because every user has at least one non-positive item.
        while pending.any():
            redraw = self.rng.integers(0, self.dataset.n_items, size=int(pending.sum()))
            negatives[pending] = redraw
            idx = np.flatnonzero(pending)
            pending[idx] = self._is_positive(users[idx], negatives[idx])
        return negatives

    def epoch_batches(
        self, batch_size: int, shuffle: bool = True
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield (users, pos_items, neg_items) mini-batches covering the train split.

        With ``rate > 1`` the positive pairs are repeated ``rate`` times, each
        repetition paired with an independent negative draw.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        users = np.repeat(self.dataset.train.users, self.rate)
        items = np.repeat(self.dataset.train.items, self.rate)
        order = self.rng.permutation(len(users)) if shuffle else np.arange(len(users))
        users, items = users[order], items[order]
        for start in range(0, len(users), batch_size):
            batch_users = users[start : start + batch_size]
            batch_pos = items[start : start + batch_size]
            batch_neg = self.sample_negatives(batch_users)
            yield batch_users, batch_pos, batch_neg
