"""Data substrate: containers, synthetic generators, quantization, splits."""

from .dataset import Dataset, InteractionTable, ItemCatalog
from .quantization import quantize, rank_quantize, uniform_quantize
from .kcore import k_core_filter
from .split import temporal_split
from .sampling import NegativeSampler
from .synthetic import (
    SyntheticConfig,
    SyntheticGroundTruth,
    generate,
    make_amazon_like,
    make_beibei_like,
    make_yelp_like,
)
from .registry import available_datasets, clear_cache, load_dataset

__all__ = [
    "Dataset",
    "InteractionTable",
    "ItemCatalog",
    "quantize",
    "rank_quantize",
    "uniform_quantize",
    "k_core_filter",
    "temporal_split",
    "NegativeSampler",
    "SyntheticConfig",
    "SyntheticGroundTruth",
    "generate",
    "make_amazon_like",
    "make_beibei_like",
    "make_yelp_like",
    "available_datasets",
    "clear_cache",
    "load_dataset",
]
