"""Iterative k-core filtering of interaction data.

The paper applies "10-core settings" — only users and items with at least 10
interactions are retained.  Removing a user can push items below the
threshold and vice versa, so the filter iterates to a fixed point, then both
id spaces are re-indexed to be contiguous.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .dataset import InteractionTable


def k_core_filter(
    table: InteractionTable,
    k: int,
    max_iterations: int = 100,
) -> Tuple[InteractionTable, np.ndarray, np.ndarray]:
    """Filter to the k-core and re-index ids.

    Returns ``(filtered_table, kept_user_ids, kept_item_ids)`` where the kept
    arrays map new contiguous ids back to the original ids
    (``kept_user_ids[new_id] == old_id``).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    users = table.users.copy()
    items = table.items.copy()
    times = table.timestamps.copy()

    for _ in range(max_iterations):
        if len(users) == 0:
            break
        user_counts = np.bincount(users)
        item_counts = np.bincount(items)
        keep = (user_counts[users] >= k) & (item_counts[items] >= k)
        if keep.all():
            break
        users, items, times = users[keep], items[keep], times[keep]
    else:
        raise RuntimeError(f"k-core did not converge within {max_iterations} iterations")

    kept_users = np.unique(users)
    kept_items = np.unique(items)
    user_map = {old: new for new, old in enumerate(kept_users)}
    item_map = {old: new for new, old in enumerate(kept_items)}
    new_users = np.fromiter((user_map[u] for u in users), dtype=np.int64, count=len(users))
    new_items = np.fromiter((item_map[i] for i in items), dtype=np.int64, count=len(items))
    return InteractionTable(new_users, new_items, times), kept_users, kept_items
