"""Dataset containers for price-aware recommendation.

The paper's input (Section II-B) is the triple

* interaction matrix ``R`` (implicit feedback, ``R_ui = 1`` means purchase),
* item prices ``p`` (discretized to levels), and
* item categories ``c``.

:class:`InteractionTable` stores raw (user, item, timestamp) events;
:class:`Dataset` bundles a train/validation/test split with the item catalog
and exposes the index structures every model needs (positive-item sets,
sparse matrices, per-item attribute arrays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np
import scipy.sparse as sp


@dataclass
class InteractionTable:
    """Columnar (user, item, timestamp) event log.

    All three arrays have equal length; timestamps order events for the
    temporal split.  Users/items are contiguous integer ids.
    """

    users: np.ndarray
    items: np.ndarray
    timestamps: np.ndarray

    def __post_init__(self) -> None:
        self.users = np.asarray(self.users, dtype=np.int64)
        self.items = np.asarray(self.items, dtype=np.int64)
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        if not (len(self.users) == len(self.items) == len(self.timestamps)):
            raise ValueError(
                "users/items/timestamps must have equal length, got "
                f"{len(self.users)}/{len(self.items)}/{len(self.timestamps)}"
            )

    def __len__(self) -> int:
        return len(self.users)

    def sorted_by_time(self) -> "InteractionTable":
        """Return a copy ordered by timestamp (stable)."""
        order = np.argsort(self.timestamps, kind="stable")
        return InteractionTable(self.users[order], self.items[order], self.timestamps[order])

    def select(self, mask: np.ndarray) -> "InteractionTable":
        """Return the subset of rows where ``mask`` is True (or an index array)."""
        return InteractionTable(self.users[mask], self.items[mask], self.timestamps[mask])

    def deduplicate(self) -> "InteractionTable":
        """Keep the earliest event per (user, item) pair."""
        table = self.sorted_by_time()
        seen: Set[tuple] = set()
        keep = np.zeros(len(table), dtype=bool)
        for index, (user, item) in enumerate(zip(table.users, table.items)):
            key = (int(user), int(item))
            if key not in seen:
                seen.add(key)
                keep[index] = True
        return table.select(keep)


@dataclass
class ItemCatalog:
    """Per-item side information: raw price, price level, category.

    ``price_levels`` is filled by a quantizer (`repro.data.quantization`);
    ``raw_prices`` keeps the continuous value so quantization choices can be
    re-run (Table IV / Fig 5 experiments).
    """

    raw_prices: np.ndarray
    categories: np.ndarray
    price_levels: np.ndarray
    n_categories: int
    n_price_levels: int

    def __post_init__(self) -> None:
        self.raw_prices = np.asarray(self.raw_prices, dtype=np.float64)
        self.categories = np.asarray(self.categories, dtype=np.int64)
        self.price_levels = np.asarray(self.price_levels, dtype=np.int64)
        n = len(self.raw_prices)
        if not (len(self.categories) == len(self.price_levels) == n):
            raise ValueError("catalog arrays must share length")
        if n and (self.categories.min() < 0 or self.categories.max() >= self.n_categories):
            raise ValueError("category id out of range")
        if n and (self.price_levels.min() < 0 or self.price_levels.max() >= self.n_price_levels):
            raise ValueError("price level out of range")

    def __len__(self) -> int:
        return len(self.raw_prices)

    def with_levels(self, price_levels: np.ndarray, n_price_levels: int) -> "ItemCatalog":
        """Return a copy with a different quantization."""
        return ItemCatalog(
            raw_prices=self.raw_prices,
            categories=self.categories,
            price_levels=price_levels,
            n_categories=self.n_categories,
            n_price_levels=n_price_levels,
        )


def expand_csr_rows(indptr: np.ndarray, indices: np.ndarray, users: np.ndarray):
    """Expand CSR slices for ``users`` into ``(rows, cols)`` scatter pairs.

    ``rows`` indexes into ``users`` (0..len(users)-1) and ``cols`` is the
    concatenation of ``indices[indptr[u]:indptr[u+1]]`` per user — computed
    as one vectorized multi-range gather, no per-user Python loop.  Returns
    ``(None, None)`` when every selected slice is empty.  Shared by the
    batch-inference kernel and the serial evaluation fallback for masking
    train positives out of score matrices.
    """
    starts = indptr[users]
    counts = indptr[users + 1] - starts
    total = int(counts.sum())
    if not total:
        return None, None
    rows = np.repeat(np.arange(len(users)), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.repeat(starts - offsets, counts) + np.arange(total)
    return rows, indices[positions]


@dataclass
class Dataset:
    """A complete price-aware recommendation dataset with a fixed split."""

    name: str
    n_users: int
    n_items: int
    catalog: ItemCatalog
    train: InteractionTable
    validation: InteractionTable
    test: InteractionTable
    _train_pos: Optional[Dict[int, Set[int]]] = field(default=None, repr=False)
    _train_csr: Optional[tuple] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if len(self.catalog) != self.n_items:
            raise ValueError(
                f"catalog has {len(self.catalog)} items but dataset declares {self.n_items}"
            )
        for split in (self.train, self.validation, self.test):
            if len(split) == 0:
                continue
            if split.users.max() >= self.n_users or split.items.max() >= self.n_items:
                raise ValueError("interaction references out-of-range user/item id")

    # ------------------------------------------------------------------
    @property
    def n_categories(self) -> int:
        return self.catalog.n_categories

    @property
    def n_price_levels(self) -> int:
        return self.catalog.n_price_levels

    @property
    def item_categories(self) -> np.ndarray:
        return self.catalog.categories

    @property
    def item_price_levels(self) -> np.ndarray:
        return self.catalog.price_levels

    # ------------------------------------------------------------------
    def train_positive_sets(self) -> Dict[int, Set[int]]:
        """Mapping user -> set of train-positive items (cached)."""
        if self._train_pos is None:
            pos: Dict[int, Set[int]] = {}
            for user, item in zip(self.train.users, self.train.items):
                pos.setdefault(int(user), set()).add(int(item))
            self._train_pos = pos
        return self._train_pos

    def split_positive_sets(self, split: str) -> Dict[int, Set[int]]:
        """Positive sets for 'train' / 'validation' / 'test'."""
        table = {"train": self.train, "validation": self.validation, "test": self.test}[split]
        pos: Dict[int, Set[int]] = {}
        for user, item in zip(table.users, table.items):
            pos.setdefault(int(user), set()).add(int(item))
        return pos

    def train_exclusion_csr(self) -> tuple:
        """Train-positive items per user as ``(indptr, indices)``, items sorted.

        The CSR form of :meth:`train_positive_sets` (deduplicated, item ids
        ascending within each user): ``indices[indptr[u]:indptr[u+1]]`` is
        user ``u``'s training items.  Shared by the serving exporter (the
        "already bought" exclusion mask) and the batch evaluation runtime
        (vectorized exclusion scatter); cached after the first call.
        """
        if self._train_csr is None:
            order = np.lexsort((self.train.items, self.train.users))
            users = self.train.users[order]
            items = self.train.items[order]
            # Deduplicate repeat purchases of the same item.
            if len(users):
                keep = np.ones(len(users), dtype=bool)
                keep[1:] = (users[1:] != users[:-1]) | (items[1:] != items[:-1])
                users, items = users[keep], items[keep]
            counts = np.zeros(self.n_users, dtype=np.int64)
            np.add.at(counts, users, 1)
            indptr = np.zeros(self.n_users + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._train_csr = (indptr, items.astype(np.int64))
        return self._train_csr

    def train_matrix(self) -> sp.csr_matrix:
        """Binary user-item matrix over the training split."""
        data = np.ones(len(self.train))
        matrix = sp.coo_matrix(
            (data, (self.train.users, self.train.items)),
            shape=(self.n_users, self.n_items),
        )
        matrix.sum_duplicates()
        matrix.data[:] = 1.0
        return matrix.tocsr()

    def item_popularity(self) -> np.ndarray:
        """Training interaction count per item (ItemPop baseline)."""
        counts = np.zeros(self.n_items, dtype=np.float64)
        np.add.at(counts, self.train.items, 1.0)
        return counts

    def requantize(self, price_levels: np.ndarray, n_price_levels: int) -> "Dataset":
        """Return a dataset copy with a different price quantization."""
        return Dataset(
            name=self.name,
            n_users=self.n_users,
            n_items=self.n_items,
            catalog=self.catalog.with_levels(price_levels, n_price_levels),
            train=self.train,
            validation=self.validation,
            test=self.test,
        )

    def summary(self) -> Dict[str, int]:
        """Statistics in the shape of the paper's Table I."""
        return {
            "users": self.n_users,
            "items": self.n_items,
            "categories": self.n_categories,
            "price_levels": self.n_price_levels,
            "interactions": len(self.train) + len(self.validation) + len(self.test),
        }
