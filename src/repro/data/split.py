"""Temporal train/validation/test splitting.

The paper ranks all records by timestamp and takes the earliest 60% as
training, the middle 20% as validation and the final 20% as test.
"""

from __future__ import annotations

from typing import Tuple

from .dataset import InteractionTable


def temporal_split(
    table: InteractionTable,
    train_fraction: float = 0.6,
    validation_fraction: float = 0.2,
) -> Tuple[InteractionTable, InteractionTable, InteractionTable]:
    """Chronological split into (train, validation, test).

    Fractions must be positive and leave a non-empty test remainder.
    """
    if not 0 < train_fraction < 1:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if not 0 < validation_fraction < 1:
        raise ValueError(f"validation_fraction must be in (0, 1), got {validation_fraction}")
    if train_fraction + validation_fraction >= 1:
        raise ValueError(
            "train + validation fractions must leave room for a test split, got "
            f"{train_fraction} + {validation_fraction}"
        )

    ordered = table.sorted_by_time()
    total = len(ordered)
    train_end = int(total * train_fraction)
    valid_end = int(total * (train_fraction + validation_fraction))
    index = list(range(total))
    train = ordered.select(index[:train_end])
    validation = ordered.select(index[train_end:valid_end])
    test = ordered.select(index[valid_end:])
    return train, validation, test
