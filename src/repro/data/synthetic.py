"""Synthetic dataset generators standing in for Yelp / Beibei / Amazon.

The original paper evaluates on public datasets (Yelp2018, Beibei, Amazon
reviews) that cannot be downloaded in this offline environment.  These
generators produce datasets *calibrated to the published statistics* (scaled
down) whose behavioural model plants exactly the structure the paper's
method exploits:

* **interest**: users prefer a small set of categories (Dirichlet mixture)
  and items close to their latent taste;
* **global purchasing power**: each user has a budget percentile ``b_u``;
* **category-dependent price awareness**: each user's willingness-to-pay in
  category ``c`` is ``WTP_{u,c} = clip(b_u + delta_{u,c})`` where the spread
  of ``delta`` across categories is the *inconsistency* knob (Section II-A's
  CWTP-entropy analysis);
* purchase probability multiplies interest with a Gaussian price-match term
  centred on ``WTP_{u,c}`` — reproducing the "one price level per category"
  concentration visible in the paper's Figure 2 heatmaps.

Because the price-match term depends on (user, category, price) jointly and
data is sparse, models that share statistical strength through explicit price
and category representations (PUP) can generalize where pure user-item CF
cannot — the same mechanism the paper argues for on real data.

Ground truth (budgets, WTP tables) is returned alongside the dataset so tests
can verify the planted signal and analyses (Fig 1 / Fig 2) can be validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .dataset import Dataset, InteractionTable, ItemCatalog
from .quantization import uniform_quantize
from .split import temporal_split


@dataclass
class SyntheticGroundTruth:
    """The latent variables used to generate a synthetic dataset."""

    user_budget: np.ndarray  # (n_users,) global WTP percentile in [0, 1]
    user_wtp: np.ndarray  # (n_users, n_categories) per-category WTP percentile
    user_category_affinity: np.ndarray  # (n_users, n_categories) mixture weights
    item_price_percentile: np.ndarray  # (n_items,) price percentile within category


@dataclass
class SyntheticConfig:
    """Knobs for :func:`generate`.

    Defaults are laptop-scale; the named constructors below mirror each
    paper dataset's shape (category count, price levels, price distribution).
    """

    name: str = "synthetic"
    n_users: int = 400
    n_items: int = 300
    n_categories: int = 12
    n_price_levels: int = 10
    interactions_per_user: int = 30
    latent_dim: int = 8
    price_sensitivity: float = 3.0
    price_match_width: float = 0.12
    inconsistency: float = 0.25
    category_concentration: float = 0.3
    popularity_skew: float = 0.6
    price_distribution: str = "uniform"  # or "lognormal"
    item_turnover: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 2 or self.n_items < 2:
            raise ValueError("need at least 2 users and 2 items")
        if self.n_categories < 1 or self.n_price_levels < 1:
            raise ValueError("need at least 1 category and 1 price level")
        if self.interactions_per_user < 3:
            raise ValueError("interactions_per_user must be >= 3 for a 60/20/20 split")
        if self.price_distribution not in ("uniform", "lognormal"):
            raise ValueError(f"unknown price distribution {self.price_distribution!r}")
        if not 0.0 <= self.item_turnover < 1.0:
            raise ValueError(f"item_turnover must be in [0, 1), got {self.item_turnover}")


def generate(config: SyntheticConfig) -> tuple[Dataset, SyntheticGroundTruth]:
    """Generate a dataset + ground truth from ``config`` (deterministic in seed)."""
    rng = np.random.default_rng(config.seed)

    # --- items: categories, latent taste vectors, prices -----------------
    category_popularity = rng.dirichlet(np.full(config.n_categories, 2.0))
    item_categories = rng.choice(config.n_categories, size=config.n_items, p=category_popularity)
    # Ensure every category has at least one item so category nodes are connected.
    for category in range(config.n_categories):
        if not (item_categories == category).any():
            item_categories[rng.integers(config.n_items)] = category

    category_means = rng.normal(0.0, 1.0, size=(config.n_categories, config.latent_dim))
    item_latents = category_means[item_categories] + rng.normal(
        0.0, 0.5, size=(config.n_items, config.latent_dim)
    )

    raw_prices = _draw_prices(rng, item_categories, config)
    price_percentile = _percentile_within_category(raw_prices, item_categories)
    price_levels = uniform_quantize(raw_prices, item_categories, config.n_price_levels)

    # --- users: taste, category mixture, budget, per-category WTP --------
    user_latents = rng.normal(0.0, 1.0, size=(config.n_users, config.latent_dim))
    affinity = rng.dirichlet(
        np.full(config.n_categories, config.category_concentration), size=config.n_users
    )
    budget = rng.beta(2.0, 2.0, size=config.n_users)
    offsets = rng.normal(0.0, config.inconsistency, size=(config.n_users, config.n_categories))
    wtp = np.clip(budget[:, None] + offsets, 0.02, 0.98)

    # --- item base popularity (long tail) ---------------------------------
    popularity = rng.zipf(1.0 + config.popularity_skew, size=config.n_items).astype(np.float64)
    log_popularity = np.log(popularity)
    log_popularity = (log_popularity - log_popularity.mean()) / max(log_popularity.std(), 1e-9)

    # --- sample interactions ----------------------------------------------
    users_out, items_out = [], []
    interest = user_latents @ item_latents.T / np.sqrt(config.latent_dim)
    interest += 3.0 * np.log(affinity[:, item_categories] + 1e-6)
    interest += 0.5 * log_popularity[None, :]

    for user in range(config.n_users):
        distance = price_percentile[None, :] - wtp[user][item_categories][None, :]
        match = -(distance[0] ** 2) / (2.0 * config.price_match_width**2)
        utility = interest[user] + config.price_sensitivity * match
        utility = utility - utility.max()
        probs = np.exp(utility)
        probs /= probs.sum()
        count = min(config.interactions_per_user, config.n_items - 1)
        chosen = rng.choice(config.n_items, size=count, replace=False, p=probs)
        users_out.append(np.full(count, user, dtype=np.int64))
        items_out.append(chosen.astype(np.int64))

    users_arr = np.concatenate(users_out)
    items_arr = np.concatenate(items_out)
    # Catalog turnover: items "release" over [0, item_turnover] and can only
    # be purchased afterwards.  With a temporal split this puts late-released
    # items mostly (or only) in validation/test — the cold-item regime where
    # explicit price/category representations must generalize, as on the real
    # platforms whose catalogs grow over time.  turnover=0 keeps a static
    # catalog (uniform timestamps).
    release = rng.random(config.n_items) * config.item_turnover
    item_release = release[items_arr]
    timestamps = item_release + (1.0 - item_release) * rng.random(len(users_arr))

    table = InteractionTable(users_arr, items_arr, timestamps)
    train, validation, test = temporal_split(table)

    catalog = ItemCatalog(
        raw_prices=raw_prices,
        categories=item_categories,
        price_levels=price_levels,
        n_categories=config.n_categories,
        n_price_levels=config.n_price_levels,
    )
    dataset = Dataset(
        name=config.name,
        n_users=config.n_users,
        n_items=config.n_items,
        catalog=catalog,
        train=train,
        validation=validation,
        test=test,
    )
    truth = SyntheticGroundTruth(
        user_budget=budget,
        user_wtp=wtp,
        user_category_affinity=affinity,
        item_price_percentile=price_percentile,
    )
    return dataset, truth


def _draw_prices(
    rng: np.random.Generator, item_categories: np.ndarray, config: SyntheticConfig
) -> np.ndarray:
    """Per-category price scales; uniform or heavy-tailed lognormal draws."""
    n_items = len(item_categories)
    scales = rng.uniform(10.0, 500.0, size=config.n_categories)
    base = scales[item_categories]
    if config.price_distribution == "uniform":
        return base * rng.uniform(0.2, 1.0, size=n_items)
    return base * rng.lognormal(mean=0.0, sigma=0.9, size=n_items)


def _percentile_within_category(prices: np.ndarray, categories: np.ndarray) -> np.ndarray:
    """Continuous price percentile within each category, in [0, 1)."""
    percentile = np.zeros(len(prices))
    for category in np.unique(categories):
        mask = categories == category
        values = prices[mask]
        order = np.argsort(np.argsort(values, kind="stable"), kind="stable")
        percentile[mask] = order / max(len(values), 1)
    return percentile


# ----------------------------------------------------------------------
# Named dataset constructors mirroring the paper's Table I (scaled down)
# ----------------------------------------------------------------------

def make_yelp_like(seed: int = 0, scale: float = 1.0) -> tuple[Dataset, SyntheticGroundTruth]:
    """Yelp2018-like: restaurants, 4 dollar-sign price levels, ~89 categories
    in the paper; scaled to 12 categories here.  Price is already categorical
    (1-4 dollar signs), so uniform price draws + 4 levels."""
    config = SyntheticConfig(
        name="yelp-like",
        n_users=int(600 * scale),
        n_items=int(900 * scale),
        n_categories=12,
        n_price_levels=4,
        interactions_per_user=18,
        price_distribution="uniform",
        price_sensitivity=4.0,
        inconsistency=0.22,
        item_turnover=0.75,
        seed=seed,
    )
    return generate(config)


def make_beibei_like(seed: int = 0, scale: float = 1.0) -> tuple[Dataset, SyntheticGroundTruth]:
    """Beibei-like: e-commerce, continuous prices quantized to 10 levels,
    110 categories in the paper scaled to 16, sparser than Yelp."""
    config = SyntheticConfig(
        name="beibei-like",
        n_users=int(700 * scale),
        n_items=int(1100 * scale),
        n_categories=16,
        n_price_levels=10,
        interactions_per_user=14,
        price_distribution="uniform",
        price_sensitivity=4.0,
        inconsistency=0.3,
        category_concentration=0.25,
        item_turnover=0.4,
        seed=seed + 1,
    )
    return generate(config)


def make_amazon_like(
    seed: int = 0, scale: float = 1.0, n_price_levels: int = 10
) -> tuple[Dataset, SyntheticGroundTruth]:
    """Amazon-reviews-like: 5 product categories, heavy-tailed (lognormal)
    raw prices — the regime where rank quantization beats uniform
    (Table IV) and price-level fineness matters (Fig 5)."""
    config = SyntheticConfig(
        name="amazon-like",
        n_users=int(600 * scale),
        n_items=int(1000 * scale),
        n_categories=5,
        n_price_levels=n_price_levels,
        interactions_per_user=14,
        price_distribution="lognormal",
        price_sensitivity=5.0,
        price_match_width=0.1,
        inconsistency=0.25,
        item_turnover=0.5,
        seed=seed + 2,
    )
    return generate(config)
