"""Cold start: recommending items from categories a user never explored.

Reproduces the Section V-F scenario: train a price-blind graph model
(GC-MC) and price-aware PUP, then compare them under the CIR and UCIR
protocols.  The price nodes give PUP an extra path to unexplored
categories (user -> item -> price -> item).

Run:  python examples/cold_start_recommendation.py
"""

import numpy as np

from repro.baselines import GCMC
from repro.core import pup_full
from repro.data import load_dataset
from repro.eval import build_cold_start_task, evaluate_cold_start
from repro.train import TrainConfig, train_model


def main() -> None:
    dataset, _truth = load_dataset("yelp", scale=0.5)
    print("dataset:", dataset.summary())

    task = build_cold_start_task(dataset)
    print(f"\ncold-start users (test purchases in unexplored categories): "
          f"{len(task.users)}")

    config = TrainConfig(epochs=25, lr_milestones=(12, 19))
    models = {
        "GC-MC (price-blind)": GCMC(dataset, dim=64, rng=np.random.default_rng(0)),
        "PUP (price-aware)": pup_full(
            dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0)
        ),
    }

    print("\n%-22s %-10s %-10s %-10s %-10s" % ("model", "CIR R@50", "CIR N@50", "UCIR R@50", "UCIR N@50"))
    for name, model in models.items():
        train_model(model, dataset, config)
        row = [name]
        for protocol in ("CIR", "UCIR"):
            metrics = evaluate_cold_start(model, dataset, protocol=protocol, ks=(50,), task=task)
            row.extend([f"{metrics['Recall@50']:.4f}", f"{metrics['NDCG@50']:.4f}"])
        print("%-22s %-10s %-10s %-10s %-10s" % tuple(row))

    print(
        "\nWhy PUP transfers: an item in an unexplored category is a high-order\n"
        "neighbor of the user through price nodes (user-item-price-item), so\n"
        "purchasing power learned in explored categories carries over."
    )


if __name__ == "__main__":
    main()
