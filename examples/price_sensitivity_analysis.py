"""Price-sensitivity analysis: reproduce the paper's motivation study.

Replicates Section II-A on the Beibei-like dataset: CWTP entropy
distribution (Fig 1) and per-user price-category heatmaps (Fig 2), then
shows how consistent and inconsistent users differ.

Run:  python examples/price_sensitivity_analysis.py
"""

import numpy as np

from repro.analysis import (
    cwtp_entropy,
    cwtp_per_user,
    render_ascii,
    row_concentration,
    split_users_by_consistency,
    user_price_category_heatmap,
)
from repro.data import load_dataset


def main() -> None:
    dataset, _truth = load_dataset("beibei", scale=0.5)
    print("dataset:", dataset.summary())

    # --- Fig 1: CWTP entropy over users -------------------------------
    entropies = cwtp_entropy(dataset)
    values = np.array(list(entropies.values()))
    print(f"\nCWTP entropy over {len(values)} users:")
    print(f"  mean={values.mean():.3f}  median={np.median(values):.3f}  "
          f"max={values.max():.3f}")
    print(f"  share of users with inconsistent price sensitivity "
          f"(entropy > 0): {np.mean(values > 0):.1%}")

    # --- Fig 2: heatmaps of three users -------------------------------
    rng = np.random.default_rng(3)
    active = np.unique(dataset.train.users)
    print("\nprice-category heatmaps (rows=categories, cols=price levels):")
    for user in rng.choice(active, size=3, replace=False):
        heatmap = user_price_category_heatmap(dataset, int(user), normalize=False)
        concentration = row_concentration(heatmap)
        print(f"\nuser {user} — row concentration {concentration:.2f}")
        print(render_ascii(heatmap, max_rows=8))

    # --- consistency split (Table VI's grouping) ----------------------
    consistent, inconsistent = split_users_by_consistency(dataset)
    print(f"\nconsistency split: {len(consistent)} consistent / "
          f"{len(inconsistent)} inconsistent users")

    # Example: the CWTP profile of one inconsistent user.
    if inconsistent:
        user = inconsistent[0]
        profile = cwtp_per_user(dataset)[user]
        print(f"user {user}'s CWTP per category (category -> max price level):")
        print(f"  {dict(sorted(profile.items()))}")


if __name__ == "__main__":
    main()
