"""Value-aware recommendation: the paper's Section VII revenue extension.

Trains PUP, then sweeps the relevance/revenue blend of
:class:`~repro.core.value_aware.ValueAwareReranker`, reporting how accuracy
(Recall@50) trades against realized revenue per user.

Run:  python examples/value_aware_reranking.py
"""

import numpy as np

from repro.core import ValueAwareReranker, pup_full, realized_revenue_at_k
from repro.data import load_dataset
from repro.eval import recall_at_k
from repro.train import TrainConfig, train_model


def main() -> None:
    dataset, _truth = load_dataset("beibei", scale=0.5)
    print("dataset:", dataset.summary())

    model = pup_full(dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0))
    train_model(model, dataset, TrainConfig(epochs=25, lr_milestones=(12, 19)))

    positives = dataset.split_positive_sets("test")
    users = sorted(positives)

    print("\n%-18s %-12s %-14s" % ("relevance_weight", "Recall@50", "revenue/user"))
    for weight in (1.0, 0.8, 0.5, 0.2, 0.0):
        reranker = ValueAwareReranker(model, dataset, relevance_weight=weight)
        rankings = reranker.rerank(users, k=50)
        recall = float(
            np.mean([recall_at_k(rankings[u], positives[u], 50) for u in users])
        )
        revenue = realized_revenue_at_k(dataset, rankings, k=50)
        print("%-18.1f %-12.4f %-14.2f" % (weight, recall, revenue))

    print(
        "\nweight 1.0 is the plain recommender; lowering it trades Recall for\n"
        "expected revenue — the value-aware dial the paper's conclusion proposes."
    )


if __name__ == "__main__":
    main()
