"""Quickstart: train PUP on the Yelp-like dataset and inspect recommendations.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import pup_full
from repro.data import load_dataset
from repro.eval import evaluate, topk_rankings
from repro.train import TrainConfig, train_model


def main() -> None:
    # 1. Load a dataset (synthetic stand-in for Yelp2018; see DESIGN.md).
    dataset, _truth = load_dataset("yelp", scale=0.5)
    print("dataset:", dataset.summary())

    # 2. Build the two-branch PUP model (56/8 embedding allocation, Table V).
    model = pup_full(
        dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0)
    )
    print(f"model: {model.name} with {model.num_parameters()} parameters")

    # 3. Train with the paper's recipe (BPR + Adam + step lr decay).
    config = TrainConfig(epochs=25, lr_milestones=(12, 19), verbose=False)
    result = train_model(model, dataset, config)
    print(f"trained {result.epochs_run} epochs, loss {result.epoch_losses[0]:.4f} "
          f"-> {result.final_loss:.4f}")

    # 4. Evaluate with the paper's protocol (full ranking, Recall/NDCG).
    metrics = evaluate(model, dataset, ks=(50, 100))
    for name, value in metrics.items():
        print(f"  {name}: {value:.4f}")

    # 5. Inspect one user's top recommendations with price/category context.
    user = int(dataset.test.users[0])
    ranking = topk_rankings(model, dataset, [user], k=5)[user]
    print(f"\ntop-5 recommendations for user {user}:")
    for rank, item in enumerate(ranking, start=1):
        print(
            f"  #{rank} item {item:4d}  category={dataset.item_categories[item]:2d}  "
            f"price_level={dataset.item_price_levels[item]}  "
            f"raw_price={dataset.catalog.raw_prices[item]:8.2f}"
        )


if __name__ == "__main__":
    main()
