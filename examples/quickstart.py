"""Quickstart: one declarative experiment — train PUP, evaluate, serve.

The whole load → build → train → evaluate → export pipeline is one
``ExperimentSpec`` plus one ``run`` call; the artifact directory it writes
can be reloaded later with ``Experiment.load`` (or served straight from the
shell: ``python -m repro serve runs/quickstart``).

Run:  python examples/quickstart.py
"""

from repro import ExperimentSpec, run_experiment


def main() -> None:
    # 1. Declare the experiment: the Yelp-like dataset, the two-branch PUP
    #    model with the paper's 56/8 embedding allocation (Table V), and the
    #    paper's training recipe (BPR + Adam + step lr decay).
    spec = ExperimentSpec.create(
        "pup",
        "yelp",
        scale=0.5,
        hparams={"global_dim": 56, "category_dim": 8},
        epochs=25,
        lr_milestones=(12, 19),
        ks=(50, 100),
        name="quickstart",
    )

    # 2. Run it.  This trains, evaluates with the paper's full-ranking
    #    protocol, exports the serving index, and writes runs/quickstart/.
    experiment = run_experiment(spec, artifacts_dir="runs/quickstart", verbose=True)

    result = experiment.train_result
    print(f"\ntrained {result.epochs_run} epochs, loss {result.epoch_losses[0]:.4f} "
          f"-> {result.final_loss:.4f}")
    for name, value in experiment.metrics.items():
        print(f"  {name}: {value:.4f}")

    # 3. Inspect one user's top recommendations with price/category context.
    dataset = experiment.dataset
    user = int(dataset.test.users[0])
    recommendation = experiment.service(default_k=5).recommend(user)
    print(f"\ntop-5 recommendations for user {user}:")
    for rank, item in enumerate(recommendation.items, start=1):
        print(
            f"  #{rank} item {item:4d}  category={dataset.item_categories[item]:2d}  "
            f"price_level={dataset.item_price_levels[item]}  "
            f"raw_price={dataset.catalog.raw_prices[item]:8.2f}"
        )
    print(f"\nartifacts written to {experiment.artifacts_dir}/ "
          "(try: python -m repro evaluate runs/quickstart)")


if __name__ == "__main__":
    main()
