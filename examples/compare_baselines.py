"""Compare all eight methods on one dataset — a miniature of Table II.

Run:  python examples/compare_baselines.py [yelp|beibei|amazon]
"""

import sys

import numpy as np

from repro.baselines import BPRMF, FM, GCMC, NGCF, DeepFM, ItemPop, PaDQ
from repro.core import pup_full
from repro.data import load_dataset
from repro.eval import evaluate
from repro.train import TrainConfig, train_model


def main(dataset_name: str = "yelp") -> None:
    dataset, _truth = load_dataset(dataset_name, scale=0.5)
    print(f"dataset: {dataset_name}-like —", dataset.summary())

    rng = lambda: np.random.default_rng(0)  # noqa: E731 - fresh seed per model
    methods = {
        "ItemPop": ItemPop(dataset),
        "BPR-MF": BPRMF(dataset, dim=64, rng=rng()),
        "PaDQ": PaDQ(dataset, dim=64, price_weight=8.0, rng=rng()),
        "FM": FM(dataset, dim=64, rng=rng()),
        "DeepFM": DeepFM(dataset, dim=32, hidden=(64, 32), rng=rng()),
        "GC-MC": GCMC(dataset, dim=64, rng=rng()),
        "NGCF": NGCF(dataset, dim=64, rng=rng()),
        "PUP": pup_full(dataset, global_dim=56, category_dim=8, rng=rng()),
    }

    config = TrainConfig(epochs=25, lr_milestones=(12, 19))
    print("\n%-10s %-10s %-10s %-12s %-10s" % ("method", "R@50", "N@50", "R@100", "N@100"))
    for name, model in methods.items():
        train_model(model, dataset, config)
        metrics = evaluate(model, dataset, ks=(50, 100))
        print(
            "%-10s %-10.4f %-10.4f %-12.4f %-10.4f"
            % (
                name,
                metrics["Recall@50"],
                metrics["NDCG@50"],
                metrics["Recall@100"],
                metrics["NDCG@100"],
            )
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
