"""Compare all eight methods on one dataset — a miniature of Table II.

Every model is built through the experiment registry (`build_model`) with
the shared Table II hyper-parameters, so this file contains zero per-model
glue.  The same comparison is available from the shell:

    python -m repro compare --dataset yelp --scale 0.5 --epochs 25

Run:  python examples/compare_baselines.py [yelp|beibei|amazon]
"""

import sys

from repro import ExperimentSpec, run_experiment
from repro.experiments import PAPER_HPARAMS, model_display_name


def main(dataset_name: str = "yelp") -> None:
    epochs = 25
    print("\n%-10s %-10s %-10s %-12s %-10s" % ("method", "R@50", "N@50", "R@100", "N@100"))
    for model_name in PAPER_HPARAMS:  # the Table II methods, in paper order
        spec = ExperimentSpec.create(
            model_name,
            dataset_name,
            scale=0.5,
            hparams=dict(PAPER_HPARAMS[model_name]),
            epochs=epochs,
            # lr cut by 10x at 1/2 and 3/4 of the run — the same rule the
            # benchmarks harness and `python -m repro compare` use.
            lr_milestones=(epochs // 2, (3 * epochs) // 4),
            ks=(50, 100),
            export=False,
        )
        metrics = run_experiment(spec).metrics
        print(
            "%-10s %-10.4f %-10.4f %-12.4f %-10.4f"
            % (
                model_display_name(model_name),
                metrics["Recall@50"],
                metrics["NDCG@50"],
                metrics["Recall@100"],
                metrics["NDCG@100"],
            )
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "yelp")
