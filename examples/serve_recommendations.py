"""Serving walkthrough: train PUP, export a frozen index, answer queries.

Covers the three serving scenarios:

1. **warm user** — full PUP score from the frozen index (bit-identical to
   the offline evaluator's ranking);
2. **cold user** — an id the model has never seen, answered by the
   price-profile fallback (optionally steered by a request profile);
3. **filtered request** — a warm user restricted to a price band.

Run:  python examples/serve_recommendations.py
"""

import os
import tempfile

import numpy as np

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.serving import (
    EmbeddingIndex,
    PriceBandFilter,
    RecommenderService,
    export_index,
)
from repro.train import TrainConfig, train_model


def describe(dataset, recommendation, label):
    print(f"\n{label} (source={recommendation.source}):")
    for rank, (item, score) in enumerate(
        zip(recommendation.items, recommendation.scores), start=1
    ):
        print(
            f"  #{rank} item {item:4d}  score={score:8.4f}  "
            f"category={dataset.item_categories[item]:2d}  "
            f"price_level={dataset.item_price_levels[item]}"
        )


def main() -> None:
    # 1. Train a small PUP on synthetic data.
    dataset, _ = generate(
        SyntheticConfig(
            n_users=200, n_items=300, n_categories=5, n_price_levels=5,
            interactions_per_user=10, seed=7,
        )
    )
    model = pup_full(dataset, global_dim=24, category_dim=8, rng=np.random.default_rng(0))
    train_model(model, dataset, TrainConfig(epochs=15, verbose=False))
    model.eval()

    # 2. Export: one propagation pass, then the graph is never touched again.
    index = export_index(model, dataset)
    path = index.save(os.path.join(tempfile.gettempdir(), "pup_index"))
    index = EmbeddingIndex.load(path)  # what a serving replica would do
    print(f"exported {index.model_name} index: {index.n_users} users x "
          f"{index.n_items} items, {len(index.branches)} branches, "
          f"{index.memory_bytes() / 1e3:.0f} kB  -> {path}")

    # 3. Stand up the service and exercise each scenario.
    service = RecommenderService(index, default_k=5)

    warm_user = 17
    describe(dataset, service.recommend(warm_user), f"warm user {warm_user}")

    cold_user = 10_000_000  # never seen by the model
    cheap = np.array([0.6, 0.4, 0.0, 0.0, 0.0])  # request-side price profile
    describe(dataset, service.recommend(cold_user, price_profile=cheap),
             f"cold user {cold_user} with a budget profile")

    describe(
        dataset,
        service.recommend(warm_user, filters=[PriceBandFilter(3, 4)]),
        f"warm user {warm_user}, premium price band only",
    )

    # 4. The same request again is a cache hit; stats show it.
    assert service.recommend(warm_user).cached
    snap = service.stats.snapshot()
    print(
        f"\nserved {snap['requests']:.0f} requests | "
        f"cache hit rate {snap['cache_hit_rate']:.0%} | "
        f"p50 {snap['latency_p50_ms']:.3f} ms | "
        f"p99 {snap['latency_p99_ms']:.3f} ms | "
        f"{snap['qps']:.0f} QPS"
    )


if __name__ == "__main__":
    main()
