"""CI gate for the crash-safe catalog lifecycle: the SIGKILL drill.

For each lifecycle fault point (``lifecycle.ingest_crash``,
``lifecycle.build_crash``, ``lifecycle.promote_crash``) this script:

1. runs the full pipeline (bootstrap -> ingest -> build -> promote) in a
   **child process** with a ``hard_kill`` fault plan — the child dies with
   ``os._exit(137)`` at the injected point, exactly like a SIGKILL, with
   no chance to flush buffers or run cleanup;
2. asserts the wreckage is safe: whatever ``CURRENT`` points at still
   loads completely (the served index is always whole; a torn candidate
   is never visible);
3. restarts in-process — construction runs ``VersionStore.recover()`` —
   re-drives the *same* deterministic event stream, rebuilds, and
   promotes;
4. asserts convergence: the recovered journal is **bit-identical**
   (``journal_digest``) to an uncrashed reference run's, and the final
   promoted version serves the same catalog size.

Both parent and child rebuild the same tiny trained index from a fixed
seed, so the drill needs no artifact directory.

Usage::

    PYTHONPATH=src python benchmarks/lifecycle_smoke.py
    PYTHONPATH=src python benchmarks/lifecycle_smoke.py --child <point> <root>
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

import numpy as np

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.faults import (
    LIFECYCLE_BUILD_CRASH,
    LIFECYCLE_INGEST_CRASH,
    LIFECYCLE_PROMOTE_CRASH,
    FaultPlan,
    FaultSpec,
)
from repro.lifecycle import (
    GateConfig,
    LifecycleConfig,
    LifecycleController,
    journal_digest,
    simulate_events,
)
from repro.serving import build_ivf, export_index

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: occurrence index at which each point's hard kill fires (ingest dies
#: mid-stream; build and promote die at their first consultation)
KILL_TIMES = {
    LIFECYCLE_INGEST_CRASH: 30,
    LIFECYCLE_BUILD_CRASH: 0,
    LIFECYCLE_PROMOTE_CRASH: 0,
}
EVENT_COUNT = 120
EVENT_SEED = 7


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def base_artifacts():
    """The deterministic seed index + ANN both parent and child rebuild."""
    dataset = generate(
        SyntheticConfig(n_users=70, n_items=260, n_categories=4, seed=3)
    )[0]
    model = pup_full(
        dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(0)
    )
    model.eval()
    index = export_index(model, dataset)
    # nprobe 7 of 8 lists: the operating point where recall@50 clears the
    # promotion floor on this tiny catalog.
    return index, build_ivf(index, nprobe=7, seed=0)


def lifecycle_config() -> LifecycleConfig:
    return LifecycleConfig(
        gates=GateConfig(nprobe=7, recall_users=32, parity_users=8),
        segment_records=32,
    )


def event_stream(index):
    return simulate_events(
        index.n_users, index.n_items, EVENT_COUNT, seed=EVENT_SEED,
        n_categories=index.n_categories,
    )


def run_pipeline(root: str, fault_plan=None) -> None:
    """Bootstrap (first run only) -> ingest -> build -> promote."""
    index, ann = base_artifacts()
    controller = LifecycleController(
        root, config=lifecycle_config(), fault_plan=fault_plan
    )
    if controller.store.current() is None:
        controller.bootstrap(index, ann)
    controller.ingest(event_stream(index))
    candidate = controller.build()
    if candidate is not None:
        promoted, report = controller.promote(candidate)
        check(promoted == candidate, f"gates rejected: {report.failures}")


def run_child(point: str, root: str) -> None:
    plan = FaultPlan(
        [FaultSpec(point, times=(KILL_TIMES[point],), hard_kill=True)]
    )
    run_pipeline(root, fault_plan=plan)
    # The kill should have fired during the pipeline; reaching here means
    # the fault point was never consulted.
    print(f"fault point {point} never fired", file=sys.stderr)
    sys.exit(3)


def drill(point: str, reference_digest: str, reference_items: int) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "store")
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child", point, root],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        check(
            child.returncode == 137,
            f"{point}: child exited {child.returncode}, wanted 137 (hard kill)\n"
            f"{child.stdout}{child.stderr}",
        )

        # The wreckage must be safe before any recovery runs: whatever
        # CURRENT names is a complete, loadable version.
        from repro.lifecycle import VersionStore

        store = VersionStore(root)
        live = store.current()
        if point == LIFECYCLE_INGEST_CRASH:
            check(live == "v000001", f"{point}: live moved to {live} mid-ingest")
        else:
            check(live is not None, f"{point}: no live version after crash")
        index, ann = store.load_version(live)
        check(
            index.n_items == ann.n_items,
            f"{point}: served version is not whole ({index.n_items} vs {ann.n_items})",
        )
        if point == LIFECYCLE_BUILD_CRASH:
            torn = [
                name for name in os.listdir(store.versions_dir)
                if not os.path.exists(
                    os.path.join(store.versions_dir, name, "manifest.json")
                )
            ]
            check(torn == ["v000002"], f"{point}: expected a torn dir, got {torn}")

        # Restart and re-drive the identical stream: recovery + exactly-
        # once ingest must converge with the uncrashed reference.
        run_pipeline(root)
        controller = LifecycleController(root, config=lifecycle_config())
        digest = journal_digest(controller.store.journal_dir)
        check(
            digest == reference_digest,
            f"{point}: recovered journal digest {digest[:12]}... != "
            f"reference {reference_digest[:12]}...",
        )
        final_index, final_ann = controller.store.load_version(
            controller.store.current()
        )
        check(
            final_index.n_items == reference_items
            and final_ann.n_items == reference_items,
            f"{point}: recovered catalog {final_index.n_items} items, "
            f"reference has {reference_items}",
        )
        check(
            controller.journal_lag() == 0,
            f"{point}: journal lag {controller.journal_lag()} after recovery",
        )
    print(f"PASS: {point} (kill -> whole serving state -> bit-identical recovery)")


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--child":
        run_child(sys.argv[2], sys.argv[3])
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        reference_root = os.path.join(tmp, "reference")
        run_pipeline(reference_root)
        controller = LifecycleController(reference_root, config=lifecycle_config())
        reference_digest = journal_digest(controller.store.journal_dir)
        live_index, _ = controller.store.load_version(controller.store.current())
        reference_items = live_index.n_items
        print(
            f"reference run: {EVENT_COUNT} events, catalog {reference_items} "
            f"items, journal digest {reference_digest[:12]}..."
        )

        for point in (
            LIFECYCLE_INGEST_CRASH,
            LIFECYCLE_BUILD_CRASH,
            LIFECYCLE_PROMOTE_CRASH,
        ):
            drill(point, reference_digest, reference_items)
    print("lifecycle smoke: all drills passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
