"""Figure 5 — recommendation quality vs number of price levels (Amazon-like).

The same interactions are requantized at 2/3/5/10/20/50/100 levels and PUP
is retrained for each.  Paper shape: an inverted U — too coarse (2 levels)
cannot express price preference, too fine (100 levels) fragments the price
nodes; the peak sits at a moderate level count.
"""

import numpy as np

from benchmarks._harness import (
    PAPER_FIG5_LEVELS,
    default_config,
    format_table,
    get_dataset,
    write_report,
)
from repro.core import pup_full
from repro.data import rank_quantize
from repro.eval import evaluate
from repro.train import train_model


def run_fig5():
    base = get_dataset("amazon")
    prices = base.catalog.raw_prices
    categories = base.catalog.categories
    series = {}
    for levels in PAPER_FIG5_LEVELS:
        dataset = base.requantize(rank_quantize(prices, categories, levels), levels)
        model = pup_full(dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0))
        train_model(model, dataset, default_config())
        series[levels] = evaluate(model, dataset, ks=(100,))["Recall@100"]
    return series


def test_fig5_price_level_sweep(benchmark):
    series = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    values = list(series.values())
    peak = max(values)
    rows = [
        [str(levels), f"{recall:.4f}", "#" * int(round(recall / peak * 40))]
        for levels, recall in series.items()
    ]
    report = format_table(
        "Fig 5 — Recall@100 vs number of price levels (amazon-like)",
        ["levels", "Recall@100", "bar"],
        rows,
        notes=[
            "paper shape: inverted U; coarse (2) and very fine (100) quantization",
            "both underperform a moderate number of levels.",
        ],
    )
    write_report("fig5_price_levels", report)

    levels = list(series)
    best_level = levels[int(np.argmax(values))]
    # The peak is interior: strictly better than both extremes.
    assert series[best_level] > series[levels[0]]
    assert series[best_level] > series[levels[-1]]
    assert 3 <= best_level <= 50
