"""Figure 2 — price-category purchase heatmaps of three sampled users.

Paper's claim: a user's consumption within a category concentrates on one
price level, and the preferred level differs between categories.
"""

import numpy as np

from benchmarks._harness import get_dataset, write_report
from repro.analysis import render_ascii, row_concentration, user_price_category_heatmap


def run_fig2():
    dataset = get_dataset("beibei")
    rng = np.random.default_rng(7)
    active_users = np.unique(dataset.train.users)
    users = rng.choice(active_users, size=3, replace=False)
    heatmaps = {int(u): user_price_category_heatmap(dataset, int(u), normalize=False) for u in users}
    concentrations = [
        row_concentration(h) for h in heatmaps.values() if h.sum() > 0
    ]
    all_concentration = []
    for user in active_users[:200]:
        heatmap = user_price_category_heatmap(dataset, int(user), normalize=False)
        if heatmap.sum() > 0:
            all_concentration.append(row_concentration(heatmap))
    return heatmaps, concentrations, float(np.mean(all_concentration))


def test_fig2_price_category_heatmap(benchmark):
    heatmaps, concentrations, mean_concentration = benchmark.pedantic(
        run_fig2, rounds=1, iterations=1
    )

    sections = ["Fig 2 — price-category purchase heatmaps (3 sampled users)", "=" * 58]
    for user, heatmap in heatmaps.items():
        sections.append(f"\nuser {user}  (rows=categories, cols=price levels)")
        sections.append(render_ascii(heatmap))
    sections.append("")
    sections.append(f"per-user row concentration (sampled 3): {[f'{c:.2f}' for c in concentrations]}")
    sections.append(f"mean row concentration over 200 users:  {mean_concentration:.3f}")
    sections.append("")
    sections.append("paper shape: within a category, purchases sit on ~one price level")
    sections.append("(row concentration near 1), and the peak level varies by category.")
    write_report("fig2_heatmap", "\n".join(sections))

    assert mean_concentration > 0.55
