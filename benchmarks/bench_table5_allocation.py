"""Table V — embedding-size allocation between the two branches (Yelp-like).

With the holistic size fixed at 64, the split global/category is swept over
16/48, 32/32, 48/16, 56/8, 60/4.  Paper shape: performance improves as the
global branch takes the majority, peaks around 56/8, and degrades when the
category branch is squeezed to almost nothing.
"""

import numpy as np

from benchmarks._harness import (
    PAPER_TABLE5,
    default_config,
    format_table,
    get_dataset,
    write_report,
)
from repro.core import pup_full
from repro.eval import evaluate
from repro.train import train_model

ALLOCATIONS = [(16, 48), (32, 32), (48, 16), (56, 8), (60, 4)]


def run_table5():
    dataset = get_dataset("yelp")
    results = {}
    for global_dim, category_dim in ALLOCATIONS:
        model = pup_full(
            dataset,
            global_dim=global_dim,
            category_dim=category_dim,
            rng=np.random.default_rng(0),
        )
        train_model(model, dataset, default_config())
        key = f"{global_dim}/{category_dim}"
        results[key] = evaluate(model, dataset, ks=(50,))["Recall@50"]
    return results


def test_table5_embedding_allocation(benchmark):
    results = benchmark.pedantic(run_table5, rounds=1, iterations=1)

    rows = [
        [allocation, f"{recall:.4f}", f"{PAPER_TABLE5[allocation]:.4f}"]
        for allocation, recall in results.items()
    ]
    report = format_table(
        "Table V — embedding allocation global/category, yelp-like (measured | paper)",
        ["allocation", "Recall@50", "paper:Recall@50"],
        rows,
        notes=[
            "paper shape: global-branch majority wins; 16/48 clearly worst;",
            "peak near 56/8.",
        ],
    )
    write_report("table5_allocation", report)

    # A global-majority allocation must beat the category-majority one.
    best = max(results, key=results.get)
    global_dim = int(best.split("/")[0])
    assert global_dim >= 32, f"best allocation {best} should favour the global branch"
    assert results["48/16"] > results["16/48"]
    assert results["56/8"] > results["16/48"]
