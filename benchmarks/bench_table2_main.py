"""Table II — top-K recommendation comparison on Yelp-like and Beibei-like.

Eight methods, Recall@{50,100} and NDCG@{50,100}.  Expected shape (from the
paper): PUP best on every metric of both datasets; PaDQ below BPR-MF
("price should be an input, not a target"); attribute-aware and graph
methods above plain BPR-MF; ItemPop far below everything personalized.
"""

from benchmarks._harness import (
    PAPER_TABLE2,
    format_table,
    get_dataset,
    model_builders,
    train_and_eval,
    write_report,
)

METRICS = ("Recall@50", "NDCG@50", "Recall@100", "NDCG@100")


def run_table2():
    results = {}
    for dataset_name in ("yelp", "beibei"):
        dataset = get_dataset(dataset_name)
        results[dataset_name] = {}
        for method, builder in model_builders().items():
            results[dataset_name][method] = train_and_eval(builder, dataset, ks=(50, 100))
    return results


def test_table2_main_comparison(benchmark):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    reports = []
    for dataset_name, method_metrics in results.items():
        rows = []
        for method, metrics in method_metrics.items():
            paper = PAPER_TABLE2[dataset_name][method]
            rows.append(
                [method]
                + [f"{metrics[m]:.4f}" for m in METRICS]
                + [f"{p:.4f}" for p in paper]
            )
        reports.append(
            format_table(
                f"Table II — {dataset_name}-like (measured | paper)",
                ["method", *METRICS, *(f"paper:{m}" for m in METRICS)],
                rows,
            )
        )
    write_report("table2_main", "\n\n".join(reports))

    for dataset_name, method_metrics in results.items():
        pup = method_metrics["PUP"]
        for metric in METRICS:
            for method, metrics in method_metrics.items():
                if method == "PUP":
                    continue
                assert pup[metric] > metrics[metric], (
                    f"{dataset_name}: PUP {metric}={pup[metric]:.4f} did not beat "
                    f"{method} ({metrics[metric]:.4f})"
                )
        # PaDQ's generative treatment of price underperforms plain BPR-MF.
        assert method_metrics["PaDQ"]["Recall@50"] < method_metrics["BPR-MF"]["Recall@50"] * 1.05
        # Non-personalized popularity is far below everything personalized.
        assert method_metrics["ItemPop"]["Recall@50"] < method_metrics["BPR-MF"]["Recall@50"]
