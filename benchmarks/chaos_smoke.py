"""CI gate for fault tolerance: chaos load, crash recovery, durable archives.

Four drills against a trained artifact directory, each deterministic
(seeded :class:`repro.faults.FaultPlan`), each exiting non-zero on
violation:

1. **Archive durability** — a corrupted archive must fail loudly with
   :class:`~repro.train.persistence.ArchiveCorrupted` (never load as
   silently wrong numbers), and stale ``*.tmp-*`` staging leftovers from a
   writer that died mid-publish must be swept on startup.
2. **Worker crash recovery** — a process-pool map with an injected worker
   crash must still return the exact serial result (the pool respawns the
   worker and retries the lost chunk), and an unrecoverable crash storm
   must fail loudly with :class:`~repro.runtime.pool.WorkerCrashed`
   instead of hanging.
3. **ANN failure degradation** — a service whose ANN index throws on every
   search must answer bit-identically to exact full-catalog retrieval
   (the first rung of the degradation ladder loses availability headroom,
   not correctness).
4. **Chaos closed loop** — a seeded fault plan (scorer errors + stalls,
   flusher crashes) under concurrent closed-loop load: the run must
   finish (no deadlock), p99 must stay bounded, and the books must
   balance *as scraped from the live /metrics endpoint*:
   ``gateway_requests_total == serving_outcomes_total{ok}+{degraded}+{failed}``
   with the runner's client-side tallies in exact agreement.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py <artifacts_dir>
"""

from __future__ import annotations

import os
import sys
import time
import urllib.request

import numpy as np

from repro.experiments import Experiment
from repro.faults import (
    FLUSHER_CRASH,
    POOL_WORKER_CRASH,
    SCORER_DELAY,
    SCORER_ERROR,
    FaultPlan,
    FaultSpec,
    corrupt_archive,
)
from repro.loadgen import WorkloadConfig, build_workload, run_chaos
from repro.obs import parse_prometheus
from repro.obs.server import MetricsServer
from repro.runtime import WorkerPool
from repro.runtime.pool import WorkerCrashed
from repro.serving import GatewayConfig, ResilienceConfig, ServingGateway
from repro.train.persistence import (
    ArchiveCorrupted,
    clean_stale_archives,
    read_archive_arrays,
    write_archive,
)

#: generous ceiling for the chaos run's serving-side p99 — the gate is
#: "bounded, not hung", not a latency SLO (CI machines are noisy)
P99_CEILING_MS = 2_000.0


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def fetch(url: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


# ----------------------------------------------------------------------
# Drill 1: archive durability
# ----------------------------------------------------------------------
def drill_archive_durability(artifacts: str) -> None:
    scratch = os.path.join(artifacts, "chaos-archive")
    os.makedirs(scratch, exist_ok=True)
    path = os.path.join(scratch, "payload.npz")
    rng = np.random.default_rng(0)
    arrays = {"weights": rng.normal(size=(64, 16)), "ids": np.arange(64)}
    write_archive(path, arrays, metadata={"purpose": "chaos drill"})

    clean = read_archive_arrays(path)
    np.testing.assert_array_equal(clean["weights"], arrays["weights"])

    victim = corrupt_archive(path, seed=1)
    try:
        read_archive_arrays(path)
        check(False, "corrupted archive loaded without ArchiveCorrupted")
    except ArchiveCorrupted as error:
        check(victim in str(error), f"corruption error does not name {victim!r}: {error}")

    # A writer that dies mid-publish leaves only staging files behind;
    # startup must sweep them and the published archive must be untouched.
    write_archive(path, arrays, metadata={"purpose": "chaos drill"})
    stale = os.path.join(scratch, "payload.npz.tmp-99999.npz")
    with open(stale, "wb") as handle:
        handle.write(b"half-written garbage")
    removed = clean_stale_archives(scratch)
    check(
        any(entry.endswith("payload.npz.tmp-99999.npz") for entry in removed),
        f"stale staging file not swept (removed: {removed})",
    )
    check(not os.path.exists(stale), "stale staging file still on disk after sweep")
    reread = read_archive_arrays(path)
    np.testing.assert_array_equal(reread["weights"], arrays["weights"])
    print("PASS: archive durability (checksum detection + staging sweep)")


# ----------------------------------------------------------------------
# Drill 2: worker crash recovery
# ----------------------------------------------------------------------
def _square_sum(chunk: np.ndarray) -> float:
    return float(np.sum(chunk.astype(np.float64) ** 2))


def drill_worker_crash_recovery() -> None:
    chunks = [np.arange(i, i + 8) for i in range(0, 64, 8)]
    expected = [_square_sum(chunk) for chunk in chunks]

    plan = FaultPlan([FaultSpec(POOL_WORKER_CRASH, times=(2,))])
    pool = WorkerPool(workers=2, mode="process", fault_plan=plan)
    with pool:
        got = pool.map(_square_sum, chunks)
    check(got == expected, f"recovered map differs from serial: {got} != {expected}")
    check(pool.worker_deaths >= 1, "injected crash never registered a worker death")
    check(pool.chunk_retries >= 1, "lost chunk was never retried")

    # Every dispatch crashes the worker: retries must exhaust into a loud
    # typed failure, not a hang.
    storm = FaultPlan([FaultSpec(POOL_WORKER_CRASH, probability=1.0)])
    pool = WorkerPool(workers=2, mode="process", fault_plan=storm, max_chunk_retries=1)
    try:
        with pool:
            pool.map(_square_sum, chunks[:2])
        check(False, "crash storm completed instead of raising WorkerCrashed")
    except WorkerCrashed:
        pass
    print("PASS: worker crash recovery (retry + bounded give-up)")


# ----------------------------------------------------------------------
# Drill 3: ANN failure falls back to exact search, bit-identically
# ----------------------------------------------------------------------
class _DeadANN:
    """An ANN index whose every search fails (transiently)."""

    kind = "dead"

    def __init__(self, n_items: int) -> None:
        self.n_items = n_items

    def search(self, *args, **kwargs):
        raise RuntimeError("ann shard offline")


def drill_ann_fallback_parity(experiment: Experiment) -> None:
    exact = experiment.service(default_k=10)
    flaky = experiment.service(
        default_k=10,
        ann=_DeadANN(experiment.index.n_items),
        resilience=ResilienceConfig(),
    )
    users = list(range(min(16, experiment.index.n_users)))
    for user in users:
        a, b = flaky.recommend(user), exact.recommend(user)
        np.testing.assert_array_equal(
            a.items, b.items,
            err_msg=f"ANN-fallback items differ from exact for user {user}",
        )
        np.testing.assert_array_equal(
            a.scores, b.scores,
            err_msg=f"ANN-fallback scores differ from exact for user {user}",
        )
    check(
        flaky.stats.fallback_count("ann_exact") >= len(users),
        "ann_exact fallbacks were not counted",
    )
    print(f"PASS: ANN failure → exact fallback, bit-identical over {len(users)} users")


# ----------------------------------------------------------------------
# Drill 4: chaos closed loop with live-scrape accounting
# ----------------------------------------------------------------------
def drill_chaos_load(experiment: Experiment) -> None:
    # Hand-placed occurrences rather than chaos_plan()'s spacing: the
    # back-to-back pair (3, 4) burns the first attempt AND its retry, so
    # the run deterministically exercises the degradation rung; the lone
    # fire at 20 is recovered by a retry.
    plan = FaultPlan(
        [
            FaultSpec(SCORER_ERROR, times=(3, 4, 20)),
            FaultSpec(SCORER_DELAY, times=(10,), delay_s=0.01),
            FaultSpec(FLUSHER_CRASH, times=(2, 30)),
        ],
        seed=7,
    )
    service = experiment.service(
        default_k=10,
        resilience=ResilienceConfig(retries=1, backoff_s=0.001),
        fault_plan=plan,
        cache_capacity=64,
    )
    gateway = ServingGateway(
        service,
        GatewayConfig(max_wait_ms=2.0, max_queue_depth=256),
        fault_plan=plan,
    )
    server = MetricsServer(
        service.registry, port=0,
        stats_fn=service.stats.extended_snapshot,
        update_fn=gateway.sync_gauges,
    ).start()
    try:
        workload = build_workload(
            WorkloadConfig(n_requests=400, n_users=experiment.index.n_users),
            seed=11,
        )
        began = time.monotonic()
        report = run_chaos(gateway, workload, plan=plan, threads=8,
                           result_timeout_s=60.0)
        elapsed = time.monotonic() - began
        check(report.ok, f"chaos accounting audit failed: {report.violations}")
        load = report.load
        check(load.n_timeout == 0, f"{load.n_timeout} requests never resolved")
        check(
            load.p99_ms < P99_CEILING_MS,
            f"chaos p99 {load.p99_ms:.1f} ms breaches the {P99_CEILING_MS:.0f} ms ceiling",
        )
        check(plan.total_fires() >= 5, f"fault plan only fired {plan.total_fires()} times")
        check(load.n_degraded >= 1, "back-to-back scorer failures never degraded")
        check(load.serving["requests"] > 0, "serving stats recorded nothing")

        # The same books, read back through the public scrape path.
        samples = parse_prometheus(fetch(f"{server.url('/metrics')}").decode())
        admitted = sum(
            value for (name, _), value in samples.items()
            if name == "gateway_requests_total"
        )
        outcomes = {
            dict(labels)["outcome"]: value
            for (name, labels), value in samples.items()
            if name == "serving_outcomes_total"
        }
        shed = sum(
            value for (name, _), value in samples.items()
            if name == "gateway_shed_total"
        )
        retries = samples.get(("gateway_retries_total", ()), 0)
        fallbacks = sum(
            value for (name, _), value in samples.items()
            if name == "gateway_fallbacks_total"
        )
        resolved = outcomes["ok"] + outcomes["degraded"] + outcomes["failed"]
        check(
            admitted == resolved,
            f"/metrics books do not balance: admitted={admitted} outcomes={outcomes}",
        )
        check(
            admitted + shed == load.n_requests,
            f"admitted({admitted}) + shed({shed}) != offered({load.n_requests})",
        )
        check(
            outcomes["ok"] == load.n_ok
            and outcomes["degraded"] == load.n_degraded
            and outcomes["failed"] == load.failed_total,
            f"scraped outcomes {outcomes} disagree with runner tallies "
            f"ok={load.n_ok} degraded={load.n_degraded} failed={load.failed_total}",
        )
        check(
            retries == report.accounting["retries"],
            f"scraped retries {retries} disagree with the audit "
            f"({report.accounting['retries']})",
        )
        check(
            fallbacks >= outcomes["degraded"],
            f"{outcomes['degraded']} degraded outcomes but {fallbacks} fallback stages",
        )
        restarts = samples.get(("gateway_flusher_restarts_total", ()), 0)
        check(restarts >= 1, "injected flusher crashes never restarted the flusher")
        print(
            f"PASS: chaos load — {load.n_requests} requests in {elapsed:.1f}s, "
            f"{outcomes['ok']:.0f} ok / {outcomes['degraded']:.0f} degraded / "
            f"{outcomes['failed']:.0f} failed, {retries:.0f} retries, "
            f"{restarts:.0f} flusher restarts, p99 {load.p99_ms:.2f} ms; "
            "/metrics books balance"
        )
    finally:
        server.stop()
        gateway.close()


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    artifacts = sys.argv[1]
    try:
        experiment = Experiment.load(artifacts)
        drill_archive_durability(artifacts)
        drill_worker_crash_recovery()
        drill_ann_fallback_parity(experiment)
        drill_chaos_load(experiment)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS: all chaos drills")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
