"""Lifecycle benchmark: delta index builds vs full IVF rebuilds.

The lifecycle's value proposition is that absorbing a day of catalog
churn (new users, new items, re-prices) does NOT cost a full ANN rebuild:
:func:`repro.lifecycle.delta.delta_build` assigns only the new items to
the frozen centroids and splices them into the existing lists.  This
benchmark quantifies that claim and gates it:

* a clustered PUP-shaped catalog (same geometry as ``bench_ann``, plus
  raw prices so fold-in can re-quantize) is built once and its full
  ``build_ivf`` time measured **in-run**;
* >= 3 consecutive delta rounds then each fold a simulated event stream
  into the index and extend the ANN layout, timing fold-in and delta
  separately;
* gates (checked before committing ``BENCH_lifecycle.json``, re-checked
  by ``--smoke`` in CI):

  - every round's recall@50 vs exact rankings, at the index's default
    operating point, holds the **0.95** floor — staleness from appended
    items must not silently erode retrieval quality;
  - every round's delta-build time is below the in-run full rebuild time
    (the whole point), and below the committed full-catalog
    ``ivf.build_seconds`` in ``BENCH_ann.json`` when that file exists;
  - ``--smoke`` additionally fails when the delta/full time ratio
    regresses to more than ``RATIO_TOLERANCE`` x the committed smoke
    ratio (a ratio of two in-run measurements, so runner speed cancels).

Usage::

    python benchmarks/bench_lifecycle.py           # full protocol,
                                                   # rewrites BENCH_lifecycle.json
    python benchmarks/bench_lifecycle.py --smoke   # quick CI check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

from repro.core.base import ScoreBranch
from repro.eval.ann import ann_recall_at_k, exact_rankings
from repro.lifecycle import DeltaConfig, delta_build, fold_in, simulate_events
from repro.serving.ann.ivf import build_ivf
from repro.serving.index import EmbeddingIndex

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_lifecycle.json")
ANN_BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_ann.json")

K = 50
RECALL_FLOOR = 0.95
#: smoke gate: delta/full ratio may not exceed committed * tolerance
#: (delta builds are milliseconds, so the ratio is noisy — be generous)
RATIO_TOLERANCE = 3.0

FULL_PROTOCOL = {
    "n_users": 2000, "n_items": 24_000, "evaluated_users": 256,
    "rounds": 3, "events_per_round": 600,
}
#: the smoke catalog is small enough that ``build_ivf``'s default nprobe
#: under-probes for k=50; pin the operating point the recall gate runs at
SMOKE_PROTOCOL = {
    "n_users": 500, "n_items": 6_000, "evaluated_users": 128,
    "rounds": 2, "events_per_round": 300, "nprobe": 20,
}


def clustered_index(n_users: int, n_items: int, dim: int = 56, side_dim: int = 8,
                    n_clusters: int = 64, seed: int = 0) -> EmbeddingIndex:
    """``bench_ann``'s clustered two-branch catalog, plus price structure."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_clusters, dim))
    item_main = (
        centers[rng.integers(n_clusters, size=n_items)]
        + 0.35 * rng.normal(size=(n_items, dim))
    ).astype(np.float32)
    user_main = (
        centers[rng.integers(n_clusters, size=n_users)]
        + 0.5 * rng.normal(size=(n_users, dim))
    ).astype(np.float32)
    item_side = (0.3 * rng.normal(size=(n_items, side_dim))).astype(np.float32)
    user_side = (0.3 * rng.normal(size=(n_users, side_dim))).astype(np.float32)
    item_const = (0.1 * rng.normal(size=n_items)).astype(np.float32)
    branches = [
        ScoreBranch(user=user_main, item=item_main),
        ScoreBranch(user=user_side, item=item_side, item_const=item_const),
    ]
    counts = rng.integers(3, 15, size=n_users)
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(
        [np.sort(rng.choice(n_items, count, replace=False)) for count in counts]
    )
    raw_prices = np.round(1.0 + 59.0 * rng.random(n_items), 4)
    n_levels = 5
    edges = np.quantile(raw_prices, np.linspace(0, 1, n_levels + 1)[1:-1])
    levels = np.searchsorted(edges, raw_prices)
    return EmbeddingIndex(
        branches,
        item_categories=np.zeros(n_items, dtype=np.int64),
        item_price_levels=levels.astype(np.int64),
        n_price_levels=n_levels,
        n_categories=1,
        exclude_indptr=indptr,
        exclude_indices=indices,
        item_popularity=np.ones(n_items),
        item_raw_prices=raw_prices,
        model_name="bench_lifecycle_clustered",
    )


def measure_recall(index: EmbeddingIndex, ann, eval_users: int, nprobe=None) -> float:
    users = np.arange(eval_users)
    exact = exact_rankings(index, users, K)
    ids, _ = ann.search(
        users, K, nprobe=nprobe,
        exclude_csr=(index.exclude_indptr, index.exclude_indices),
    )
    approx = {int(u): ids[row] for row, u in enumerate(users)}
    return float(ann_recall_at_k(exact, approx, K))


def run_protocol(protocol: Dict) -> Dict:
    index = clustered_index(protocol["n_users"], protocol["n_items"], seed=0)
    eval_users = protocol["evaluated_users"]

    start = time.perf_counter()
    ann = build_ivf(index, seed=0)
    full_seconds = time.perf_counter() - start
    print(
        f"  full build_ivf: {full_seconds:8.3f} s "
        f"({ann.n_lists} lists, default nprobe {ann.nprobe})"
    )

    rounds: List[Dict] = []
    appended, seq = 0, 0
    for round_id in range(protocol["rounds"]):
        events = simulate_events(
            index.n_users, index.n_items, protocol["events_per_round"],
            seed=100 + round_id, start_seq=seq,
        )
        seq += len(events)

        start = time.perf_counter()
        index, fold_stats = fold_in(index, events)
        fold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        ann, delta_stats = delta_build(
            ann, index, DeltaConfig(appended_since_recluster=appended)
        )
        delta_seconds = time.perf_counter() - start
        appended = delta_stats.appended_since_recluster

        recall = measure_recall(index, ann, eval_users, nprobe=protocol.get("nprobe"))
        rounds.append({
            "round": round_id,
            "events": len(events),
            "new_users": fold_stats.new_users,
            "new_items": fold_stats.new_items,
            "reprices": fold_stats.reprices,
            "fold_in_seconds": fold_seconds,
            "delta_build_seconds": delta_seconds,
            "speedup_vs_full_rebuild": full_seconds / max(delta_seconds, 1e-9),
            "staleness": delta_stats.staleness,
            "reclustered": delta_stats.reclustered,
            "recall_at_50": recall,
        })
        print(
            f"  round {round_id}: +{fold_stats.new_items} items"
            f" +{fold_stats.new_users} users, fold {fold_seconds*1e3:7.1f} ms,"
            f" delta {delta_seconds*1e3:7.1f} ms"
            f" ({rounds[-1]['speedup_vs_full_rebuild']:,.0f}x full rebuild),"
            f" staleness {delta_stats.staleness:.4f},"
            f" recall@{K}={recall:.4f}"
        )
    return {
        "protocol": dict(protocol),
        "full_build_seconds": full_seconds,
        "n_lists": int(ann.n_lists),
        "default_nprobe": int(ann.nprobe),
        "final_n_items": int(index.n_items),
        "rounds": rounds,
        "max_delta_seconds": max(r["delta_build_seconds"] for r in rounds),
        "min_recall_at_50": min(r["recall_at_50"] for r in rounds),
        "delta_to_full_ratio": max(
            r["delta_build_seconds"] for r in rounds
        ) / full_seconds,
    }


def gate(report: Dict) -> bool:
    ok = True
    for entry in report["rounds"]:
        if entry["recall_at_50"] < RECALL_FLOOR:
            print(
                f"FAIL: round {entry['round']} recall@{K} "
                f"{entry['recall_at_50']:.4f} < {RECALL_FLOOR}",
                file=sys.stderr,
            )
            ok = False
        if entry["reclustered"]:
            print(
                f"FAIL: round {entry['round']} fell back to a full re-cluster "
                "— the protocol is meant to exercise the delta path",
                file=sys.stderr,
            )
            ok = False
        if entry["delta_build_seconds"] >= report["full_build_seconds"]:
            print(
                f"FAIL: round {entry['round']} delta build "
                f"{entry['delta_build_seconds']:.3f} s is not below the in-run "
                f"full rebuild {report['full_build_seconds']:.3f} s",
                file=sys.stderr,
            )
            ok = False
    if os.path.exists(ANN_BENCH_PATH):
        with open(ANN_BENCH_PATH) as handle:
            committed_full = json.load(handle)["ivf"]["build_seconds"]
        if report["max_delta_seconds"] >= committed_full:
            print(
                f"FAIL: max delta build {report['max_delta_seconds']:.3f} s is "
                f"not below the committed full-catalog build "
                f"({committed_full:.2f} s in BENCH_ann.json)",
                file=sys.stderr,
            )
            ok = False
        report["committed_ann_build_seconds"] = committed_full
    return ok


def cmd_full() -> int:
    print(f"full protocol ({FULL_PROTOCOL['n_items']:,}-item clustered catalog):")
    report = run_protocol(FULL_PROTOCOL)
    print(f"smoke protocol ({SMOKE_PROTOCOL['n_items']:,}-item clustered catalog):")
    smoke = run_protocol(SMOKE_PROTOCOL)
    if not gate(report) or not gate(smoke):
        print("not committing numbers", file=sys.stderr)
        return 1
    payload = {
        "benchmark": "lifecycle_delta_builds",
        **report,
        "gates": {
            "recall_floor": RECALL_FLOOR,
            "delta_below_full_rebuild": True,
            "ratio_tolerance": RATIO_TOLERANCE,
        },
        "smoke_reference": smoke,
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\ndelta absorbs {report['rounds'][-1]['events']} events in "
        f"{report['max_delta_seconds']*1e3:.1f} ms max vs "
        f"{report['full_build_seconds']:.2f} s full rebuild "
        f"({report['full_build_seconds']/report['max_delta_seconds']:,.0f}x) "
        f"at recall@{K} >= {report['min_recall_at_50']:.4f}"
    )
    print(f"wrote {BENCH_PATH}")
    return 0


def cmd_smoke() -> int:
    if not os.path.exists(BENCH_PATH):
        print(
            f"missing committed baseline {BENCH_PATH}; run without --smoke first",
            file=sys.stderr,
        )
        return 2
    with open(BENCH_PATH) as handle:
        committed = json.load(handle)
    reference = committed["smoke_reference"]
    protocol = reference["protocol"]
    print(f"smoke protocol ({protocol['n_items']:,}-item clustered catalog):")
    report = run_protocol(protocol)
    ok = gate(report)
    ceiling = reference["delta_to_full_ratio"] * RATIO_TOLERANCE
    if report["delta_to_full_ratio"] > ceiling:
        print(
            f"FAIL: delta/full ratio {report['delta_to_full_ratio']:.5f} exceeds "
            f"{RATIO_TOLERANCE}x the committed {reference['delta_to_full_ratio']:.5f}",
            file=sys.stderr,
        )
        ok = False
    print(
        f"\ndelta/full ratio {report['delta_to_full_ratio']:.5f} "
        f"(committed {reference['delta_to_full_ratio']:.5f}, ceiling {ceiling:.5f}), "
        f"min recall@{K}={report['min_recall_at_50']:.4f} (floor {RECALL_FLOOR})"
    )
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI check against the committed baseline")
    args = parser.parse_args()
    return cmd_smoke() if args.smoke else cmd_full()


if __name__ == "__main__":
    sys.exit(main())
