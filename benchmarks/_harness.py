"""Shared infrastructure for the per-table / per-figure benchmarks.

Every benchmark file regenerates one artifact of the paper's evaluation
section: it trains the involved models on the corresponding synthetic
dataset, prints the same rows/series the paper reports (with the paper's
published numbers alongside for shape comparison), and writes the report to
``benchmarks/results/<name>.txt``.

Absolute numbers are not expected to match the paper (our substrate is a
calibrated synthetic generator, not the original datasets); the *shape* —
who wins, rough factors, where curves peak — is the reproduction target.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional

from repro.data import load_dataset
from repro.data.dataset import Dataset
from repro.eval import evaluate
from repro.experiments import PAPER_HPARAMS, build_model, model_display_name
from repro.train import TrainConfig, train_model

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: standard training recipe used by all benchmarks (paper: Adam @ 1e-2,
#: batch 1024, BPR, lr cut by 10x twice; epochs reduced for synthetic scale)
EPOCHS = 45


def default_config(seed: int = 0, epochs: int = EPOCHS) -> TrainConfig:
    """The shared training recipe: lr decays 10x at 1/2 and 3/4 of the run."""
    return TrainConfig(
        epochs=epochs,
        batch_size=1024,
        learning_rate=1e-2,
        l2_weight=1e-4,
        lr_milestones=(epochs // 2, (3 * epochs) // 4),
        seed=seed,
    )


def model_builders(seed: int = 0) -> Dict[str, Callable[[Dataset], object]]:
    """Constructors for the Table II method column, in the paper's order.

    Built from the model registry; ``PAPER_HPARAMS`` is the shared
    hyper-parameter table, so the benchmarks, the examples, and the CLI
    ``compare`` subcommand all train identical configurations.
    """
    return {
        model_display_name(name): (
            lambda d, name=name: build_model(name, d, seed=seed, **PAPER_HPARAMS[name])
        )
        for name in PAPER_HPARAMS
    }


def train_and_eval(
    builder: Callable[[Dataset], object],
    dataset: Dataset,
    ks: Iterable[int] = (50, 100),
    seed: int = 0,
    epochs: int = EPOCHS,
) -> Dict[str, float]:
    """Train one model with the shared recipe and return test metrics."""
    model = builder(dataset)
    train_model(model, dataset, default_config(seed=seed, epochs=epochs))
    return evaluate(model, dataset, ks=ks)


def trained_model(
    builder: Callable[[Dataset], object],
    dataset: Dataset,
    seed: int = 0,
    epochs: int = EPOCHS,
):
    """Train one model and return it (for protocol-specific evaluation)."""
    model = builder(dataset)
    train_model(model, dataset, default_config(seed=seed, epochs=epochs))
    return model


def get_dataset(name: str, **kwargs) -> Dataset:
    """Named synthetic dataset (cached across benchmark files)."""
    dataset, __ = load_dataset(name, **kwargs)
    return dataset


def format_table(
    title: str,
    header: List[str],
    rows: List[List[str]],
    notes: Optional[List[str]] = None,
) -> str:
    """Fixed-width text table matching the paper's row layout."""
    widths = [max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    if notes:
        lines.append("")
        lines.extend(notes)
    return "\n".join(lines)


def write_report(name: str, text: str) -> str:
    """Print the report and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path


# ----------------------------------------------------------------------
# Paper-published numbers, for side-by-side shape comparison in reports.
# ----------------------------------------------------------------------

PAPER_TABLE2 = {
    "yelp": {
        "ItemPop": (0.0401, 0.0182, 0.0660, 0.0247),
        "BPR-MF": (0.1621, 0.0767, 0.2538, 0.1000),
        "PaDQ": (0.1241, 0.0572, 0.2000, 0.0767),
        "FM": (0.1635, 0.0771, 0.2538, 0.1001),
        "DeepFM": (0.1644, 0.0769, 0.2545, 0.0998),
        "GC-MC": (0.1670, 0.0770, 0.2621, 0.1011),
        "NGCF": (0.1679, 0.0769, 0.2619, 0.1008),
        "PUP": (0.1765, 0.0816, 0.2715, 0.1058),
    },
    "beibei": {
        "ItemPop": (0.0087, 0.0027, 0.0175, 0.0046),
        "BPR-MF": (0.0256, 0.0103, 0.0379, 0.0129),
        "PaDQ": (0.0131, 0.0056, 0.0186, 0.0068),
        "FM": (0.0259, 0.0104, 0.0384, 0.0130),
        "DeepFM": (0.0255, 0.0090, 0.0400, 0.0122),
        "GC-MC": (0.0231, 0.0100, 0.0343, 0.0124),
        "NGCF": (0.0256, 0.0107, 0.0383, 0.0134),
        "PUP": (0.0266, 0.0113, 0.0403, 0.0142),
    },
}

PAPER_TABLE3 = {
    "PUP w/o c,p": (0.0726, 0.0211, 0.1155, 0.0285),
    "PUP w/ c": (0.0633, 0.0222, 0.0944, 0.0276),
    "PUP w/ p": (0.0854, 0.0277, 0.1275, 0.0350),
    "PUP": (0.0890, 0.0293, 0.1336, 0.0370),
}

PAPER_TABLE4 = {
    "Uniform": (0.0807, 0.0264, 0.1192, 0.0331),
    "Rank": (0.0885, 0.0294, 0.1313, 0.0368),
}

PAPER_TABLE5 = {  # allocation -> Recall@50 on Yelp
    "16/48": 0.1460,
    "32/32": 0.1689,
    "48/16": 0.1757,
    "56/8": 0.1765,
    "60/4": 0.1745,
}

PAPER_TABLE6 = {  # NDCG@50 on Beibei
    "consistent": {"DeepFM": 0.0091, "PUP": 0.0129},
    "inconsistent": {"DeepFM": 0.0085, "PUP": 0.0086},
}

PAPER_FIG5_LEVELS = (2, 3, 5, 10, 20, 50, 100)
