"""Figure 1 — histogram of users' CWTP entropy on the Beibei-like dataset.

Paper's claim: the distribution is skewed with wide support — many users
have distinctly positive entropy, i.e. price sensitivity is inconsistent
across categories for a large user population.
"""

import numpy as np

from benchmarks._harness import format_table, get_dataset, write_report
from repro.analysis import cwtp_entropy, entropy_histogram


def run_fig1():
    dataset = get_dataset("beibei")
    entropies = np.array(list(cwtp_entropy(dataset).values()))
    edges, density = entropy_histogram(dataset, bins=12)
    return dataset, entropies, edges, density


def test_fig1_cwtp_entropy(benchmark):
    dataset, entropies, edges, density = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    rows = [
        [f"{lo:.2f}-{hi:.2f}", f"{d:.3f}", "#" * int(round(d * 40))]
        for lo, hi, d in zip(edges[:-1], edges[1:], density)
    ]
    stats = [
        f"users analyzed: {len(entropies)}",
        f"mean entropy:   {entropies.mean():.3f}",
        f"median entropy: {np.median(entropies):.3f}",
        f"max entropy:    {entropies.max():.3f}",
        f"share with entropy > 0: {np.mean(entropies > 0):.2%}",
        "",
        "paper shape: skewed density over [0, ~3] with substantial mass at",
        "positive entropy (price sensitivity inconsistent across categories).",
    ]
    report = format_table(
        "Fig 1 — CWTP entropy histogram (beibei-like)",
        ["bin", "density", "bar"],
        rows,
        notes=stats,
    )
    write_report("fig1_cwtp_entropy", report)

    # Shape assertions: wide support and plenty of inconsistent users.
    assert entropies.max() > 0.5
    assert np.mean(entropies > 0) > 0.3
