"""Figure 6 — cold-start performance on unexplored categories (Yelp-like).

Five methods (FM, DeepFM, GC-MC, PUP−, PUP) under the CIR and UCIR
protocols.  Paper shape: GCN-based methods (GC-MC, PUP−, PUP) beat
factorization methods (FM, DeepFM); PUP and PUP− beat GC-MC thanks to the
price bridge; full PUP is best overall.
"""

import numpy as np

from benchmarks._harness import default_config, format_table, get_dataset, write_report
from repro.baselines import FM, GCMC, DeepFM
from repro.core import pup_full, pup_minus
from repro.eval import build_cold_start_task, evaluate_cold_start
from repro.train import train_model


def builders():
    return {
        "FM": lambda d: FM(d, dim=64, rng=np.random.default_rng(0)),
        "DeepFM": lambda d: DeepFM(d, dim=32, hidden=(64, 32), rng=np.random.default_rng(0)),
        "GC-MC": lambda d: GCMC(d, dim=64, rng=np.random.default_rng(0)),
        "PUP-": lambda d: pup_minus(d, global_dim=56, category_dim=8, rng=np.random.default_rng(0)),
        "PUP": lambda d: pup_full(d, global_dim=56, category_dim=8, rng=np.random.default_rng(0)),
    }


def run_fig6():
    dataset = get_dataset("yelp")
    task = build_cold_start_task(dataset)
    results = {}
    for name, builder in builders().items():
        model = builder(dataset)
        train_model(model, dataset, default_config())
        results[name] = {
            protocol: evaluate_cold_start(model, dataset, protocol=protocol, ks=(50,), task=task)
            for protocol in ("CIR", "UCIR")
        }
    return results, len(task.users)


def test_fig6_cold_start(benchmark):
    results, n_cold_users = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{metrics['CIR']['Recall@50']:.4f}",
            f"{metrics['CIR']['NDCG@50']:.4f}",
            f"{metrics['UCIR']['Recall@50']:.4f}",
            f"{metrics['UCIR']['NDCG@50']:.4f}",
        ]
        for name, metrics in results.items()
    ]
    report = format_table(
        "Fig 6 — cold-start on unexplored categories, yelp-like",
        ["method", "CIR R@50", "CIR N@50", "UCIR R@50", "UCIR N@50"],
        rows,
        notes=[
            f"cold-start users: {n_cold_users}",
            "paper shape: GCN methods (GC-MC, PUP-, PUP) > factorization methods",
            "(FM, DeepFM); PUP best in both protocols; PUP- also beats GC-MC.",
        ],
    )
    write_report("fig6_cold_start", report)

    for protocol in ("CIR", "UCIR"):
        recall = {name: m[protocol]["Recall@50"] for name, m in results.items()}
        assert recall["PUP"] >= max(recall.values()) * 0.97, f"PUP should lead {protocol}"
        # Price-aware graph methods at or above the factorization methods.
        assert max(recall["GC-MC"], recall["PUP-"], recall["PUP"]) >= 0.97 * max(
            recall["FM"], recall["DeepFM"]
        )
        # The price bridge helps beyond plain (price-blind) graph CF.
        assert recall["PUP"] > recall["GC-MC"]
        assert recall["PUP-"] > recall["GC-MC"]
