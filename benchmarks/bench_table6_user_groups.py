"""Table VI — consistent vs inconsistent users on the Beibei-like dataset.

Users are split by CWTP entropy (Section II-A).  Paper shape: both DeepFM
and PUP do much better on consistent users; PUP's boost over DeepFM is
large on the consistent group and small (but non-negative) on the
inconsistent group.
"""

import numpy as np

from benchmarks._harness import (
    PAPER_TABLE6,
    default_config,
    format_table,
    get_dataset,
    write_report,
)
from repro.baselines import DeepFM
from repro.core import pup_full
from repro.eval import consistency_groups, evaluate_user_groups
from repro.train import train_model


def run_table6():
    dataset = get_dataset("beibei")
    groups = consistency_groups(dataset)

    models = {
        "DeepFM": DeepFM(dataset, dim=32, hidden=(64, 32), rng=np.random.default_rng(0)),
        "PUP": pup_full(dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0)),
    }
    results = {}
    for name, model in models.items():
        train_model(model, dataset, default_config())
        results[name] = evaluate_user_groups(model, dataset, groups, ks=(50,))
    sizes = {name: len(users) for name, users in groups.items()}
    return results, sizes


def test_table6_consistency_groups(benchmark):
    results, sizes = benchmark.pedantic(run_table6, rounds=1, iterations=1)

    rows = []
    for group in ("consistent", "inconsistent"):
        deepfm = results["DeepFM"][group]["NDCG@50"]
        pup = results["PUP"][group]["NDCG@50"]
        boost = (pup - deepfm) / deepfm * 100 if deepfm > 0 else float("inf")
        paper = PAPER_TABLE6[group]
        paper_boost = (paper["PUP"] - paper["DeepFM"]) / paper["DeepFM"] * 100
        rows.append(
            [
                group,
                f"{deepfm:.4f}",
                f"{pup:.4f}",
                f"{boost:+.1f}%",
                f"{paper['DeepFM']:.4f}",
                f"{paper['PUP']:.4f}",
                f"{paper_boost:+.1f}%",
            ]
        )
    report = format_table(
        "Table VI — NDCG@50 per consistency group, beibei-like (measured | paper)",
        ["group", "DeepFM", "PUP", "boost", "paper:DeepFM", "paper:PUP", "paper:boost"],
        rows,
        notes=[
            f"group sizes: {sizes}",
            "paper shape: PUP >= DeepFM on both groups; the boost is larger on",
            "consistent users; both models find inconsistent users harder.",
        ],
    )
    write_report("table6_user_groups", report)

    for group in ("consistent", "inconsistent"):
        assert results["PUP"][group]["NDCG@50"] >= results["DeepFM"][group]["NDCG@50"] * 0.98
    # Consistent users are easier for the price-aware model.
    assert results["PUP"]["consistent"]["NDCG@50"] > results["PUP"]["inconsistent"]["NDCG@50"]
