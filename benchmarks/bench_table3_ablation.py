"""Table III — ablation of the price factor on the Amazon-like dataset.

Four variants: PUP w/o c,p (neither factor), PUP w/ c (category only),
PUP w/ p (price only), full PUP.  Paper shape: full PUP best everywhere;
price alone (w/ p) clearly above the attribute-free variant; category
alone is *not* sufficient (in the paper it even hurts Recall).
"""

import numpy as np

from benchmarks._harness import (
    PAPER_TABLE3,
    default_config,
    format_table,
    get_dataset,
    write_report,
)
from repro.core import (
    pup_full,
    pup_with_category,
    pup_with_price,
    pup_without_price_and_category,
)
from repro.eval import evaluate
from repro.train import train_model

METRICS = ("Recall@50", "NDCG@50", "Recall@100", "NDCG@100")

VARIANTS = [
    ("PUP w/o c,p", pup_without_price_and_category),
    ("PUP w/ c", pup_with_category),
    ("PUP w/ p", pup_with_price),
    ("PUP", pup_full),
]


def run_table3():
    dataset = get_dataset("amazon")
    results = {}
    for name, factory in VARIANTS:
        model = factory(dataset, rng=np.random.default_rng(0), global_dim=56, category_dim=8)
        train_model(model, dataset, default_config())
        results[name] = evaluate(model, dataset, ks=(50, 100))
    return results


def test_table3_price_ablation(benchmark):
    results = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    rows = [
        [name]
        + [f"{metrics[m]:.4f}" for m in METRICS]
        + [f"{p:.4f}" for p in PAPER_TABLE3[name]]
        for name, metrics in results.items()
    ]
    report = format_table(
        "Table III — price-factor ablation, amazon-like (measured | paper)",
        ["variant", *METRICS, *(f"paper:{m}" for m in METRICS)],
        rows,
        notes=[
            "paper shape: full PUP and w/ p beat w/o c,p; category alone is the",
            "weakest variant.  Reproduced on NDCG (ranking quality); on the",
            "synthetic substrate Recall@K of the attribute-free variant stays",
            "competitive because item co-purchases leak price implicitly at",
            "this density (see EXPERIMENTS.md, deviation D1).",
        ],
    )
    write_report("table3_ablation", report)

    full, with_p = results["PUP"], results["PUP w/ p"]
    with_c, without = results["PUP w/ c"], results["PUP w/o c,p"]
    # Price factor lifts ranking quality (NDCG) — the paper's core ordering.
    for metric in ("NDCG@50", "NDCG@100"):
        assert with_p[metric] > without[metric], f"price factor should help on {metric}"
        assert full[metric] > without[metric], f"full PUP should beat w/o c,p on {metric}"
        # Category alone cannot recover the price signal.
        assert with_c[metric] < with_p[metric], f"w/ c should trail w/ p on {metric}"
    assert full["NDCG@50"] >= with_p["NDCG@50"] * 0.97
