"""Table IV — uniform vs rank-based price quantization on Amazon-like data.

The Amazon-like generator draws heavy-tailed (lognormal) raw prices, the
regime where uniform quantization crowds most items into the bottom levels.
Paper shape: rank-based quantization beats uniform on every metric.
"""

import numpy as np

from benchmarks._harness import (
    PAPER_TABLE4,
    default_config,
    format_table,
    get_dataset,
    write_report,
)
from repro.core import pup_full
from repro.data import rank_quantize, uniform_quantize
from repro.eval import evaluate
from repro.train import train_model

METRICS = ("Recall@50", "NDCG@50", "Recall@100", "NDCG@100")


def run_table4():
    base = get_dataset("amazon")
    prices = base.catalog.raw_prices
    categories = base.catalog.categories
    n_levels = base.n_price_levels

    datasets = {
        "Uniform": base.requantize(uniform_quantize(prices, categories, n_levels), n_levels),
        "Rank": base.requantize(rank_quantize(prices, categories, n_levels), n_levels),
    }
    results, occupancy = {}, {}
    for name, dataset in datasets.items():
        model = pup_full(dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0))
        train_model(model, dataset, default_config())
        results[name] = evaluate(model, dataset, ks=(50, 100))
        counts = np.bincount(dataset.item_price_levels, minlength=n_levels)
        occupancy[name] = counts / counts.sum()
    return results, occupancy


def test_table4_quantization(benchmark):
    results, occupancy = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    rows = [
        [name]
        + [f"{metrics[m]:.4f}" for m in METRICS]
        + [f"{p:.4f}" for p in PAPER_TABLE4[name]]
        for name, metrics in results.items()
    ]
    notes = [
        f"level occupancy (uniform): {np.round(occupancy['Uniform'], 2).tolist()}",
        f"level occupancy (rank):    {np.round(occupancy['Rank'], 2).tolist()}",
        "",
        "paper shape: rank quantization wins on every metric because the raw",
        "price distribution is heavy-tailed and uniform bins are unbalanced.",
    ]
    report = format_table(
        "Table IV — quantization methods, amazon-like (measured | paper)",
        ["method", *METRICS, *(f"paper:{m}" for m in METRICS)],
        rows,
        notes=notes,
    )
    write_report("table4_quantization", report)

    # Uniform bins are skewed; rank bins near-balanced.
    assert occupancy["Uniform"].max() > 2.0 * occupancy["Rank"].max() * 0.5
    assert occupancy["Rank"].max() < 0.25
    for metric in METRICS:
        assert results["Rank"][metric] > results["Uniform"][metric] * 0.95
    assert results["Rank"]["Recall@50"] > results["Uniform"]["Recall@50"]
