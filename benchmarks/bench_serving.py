"""Serving benchmark: latency/QPS of index retrieval vs the live model.

For several catalog sizes this measures, with the same PUP architecture:

* **live** — answering one user by running the model's own scoring path
  (graph propagation + dense decode), i.e. what serving without an export
  step would cost (`eval.topk_rankings` per query); this is the in-run
  baseline every speedup is normalized against;
* **served (single)** — one request at a time through
  :class:`~repro.serving.service.RecommenderService` (cache disabled, so
  numbers are pure compute);
* **served (batched)** — the same requests micro-batched 64 at a time, the
  intended production configuration — measured with full observability on
  (metrics registry + span tracer), so the CI speedup gate prices in the
  instrumentation overhead a production deployment actually pays.

Reported: p50/p99 per-request latency, QPS, and the live/served speedup.
Weights are untrained (timing does not depend on weight values).

Besides the human-readable report (``benchmarks/results/bench_serving.txt``)
the run writes the repo-root ``BENCH_serving.json``; CI re-measures the
smallest catalog with ``--smoke`` and fails if the batched-serving speedup
(a ratio of two in-run measurements, so runner speed cancels out) regresses
more than 30% against the committed value.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full, rewrites
                                                                # BENCH_serving.json
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

import numpy as np

from _harness import write_report
from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.eval import topk_rankings
from repro.obs import Tracer
from repro.serving import RecommenderService, export_index

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_serving.json")

K = 50
BATCH = 64
CATALOGS = (
    # (n_users, n_items, live queries, served queries)
    (400, 1_000, 30, 400),
    (800, 4_000, 20, 400),
    (1_600, 16_000, 10, 400),
)

#: CI gate: fail when the batched speedup drops below (1 - this) of committed
REGRESSION_TOLERANCE = 0.30


def percentiles(latencies: list) -> tuple:
    arr = np.asarray(latencies) * 1e3  # ms
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def bench_catalog(
    n_users: int, n_items: int, live_queries: int, served_queries: int, lines: list
) -> Dict:
    dataset, _ = generate(
        SyntheticConfig(
            n_users=n_users, n_items=n_items, n_categories=8, n_price_levels=5,
            interactions_per_user=8, seed=1,
        )
    )
    model = pup_full(dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0))
    model.eval()

    began = time.perf_counter()
    index = export_index(model, dataset)
    export_s = time.perf_counter() - began

    rng = np.random.default_rng(7)
    warm_users = np.unique(dataset.train.users)

    # --- live model path: propagation + decode per query ---------------
    live_lat = []
    for user in rng.choice(warm_users, size=live_queries):
        began = time.perf_counter()
        topk_rankings(model, dataset, [int(user)], k=K)
        live_lat.append(time.perf_counter() - began)

    # --- served, single request at a time -------------------------------
    service = RecommenderService(index, default_k=K, cache_capacity=0)
    single_lat = []
    for user in rng.choice(warm_users, size=served_queries):
        began = time.perf_counter()
        service.recommend(int(user))
        single_lat.append(time.perf_counter() - began)

    # --- served, micro-batched, observability on ------------------------
    # Tracer + registry attached: the gated speedup includes the cost of
    # recording spans and histogram observations on every request.
    tracer = Tracer(process_name="bench-serving")
    batched = RecommenderService(
        index, default_k=K, cache_capacity=0, max_batch_size=BATCH, tracer=tracer
    )
    batch_lat = []
    users = rng.choice(warm_users, size=served_queries)
    for start in range(0, len(users), BATCH):
        chunk = [int(u) for u in users[start : start + BATCH]]
        began = time.perf_counter()
        batched.recommend_many(chunk)
        batch_lat.append((time.perf_counter() - began) / len(chunk))
    assert len(tracer) >= served_queries  # every request really was traced

    live_p50, live_p99 = percentiles(live_lat)
    single_p50, single_p99 = percentiles(single_lat)
    batch_p50, batch_p99 = percentiles(batch_lat)
    single_qps = 1e3 / single_p50
    batch_qps = 1e3 / batch_p50
    speedup_single = live_p50 / single_p50
    speedup_batch = live_p50 / batch_p50

    lines.append(
        f"catalog {n_items:>6d} items / {n_users:>5d} users   "
        f"(export {export_s * 1e3:7.1f} ms, index {index.memory_bytes() / 1e6:6.2f} MB)"
    )
    lines.append(
        f"  live model      p50 {live_p50:9.3f} ms   p99 {live_p99:9.3f} ms   "
        f"{1e3 / live_p50:9.0f} QPS"
    )
    lines.append(
        f"  served single   p50 {single_p50:9.3f} ms   p99 {single_p99:9.3f} ms   "
        f"{single_qps:9.0f} QPS   ({speedup_single:6.1f}x live)"
    )
    lines.append(
        f"  served batch{BATCH:<3d} p50 {batch_p50:9.3f} ms   p99 {batch_p99:9.3f} ms   "
        f"{batch_qps:9.0f} QPS   ({speedup_batch:6.1f}x live)"
    )
    lines.append("")
    return {
        "n_users": n_users,
        "n_items": n_items,
        "live_queries": live_queries,
        "served_queries": served_queries,
        "export_ms": export_s * 1e3,
        "index_mb": index.memory_bytes() / 1e6,
        "live_p50_ms": live_p50,
        "live_p99_ms": live_p99,
        "single_p50_ms": single_p50,
        "single_p99_ms": single_p99,
        "single_qps": single_qps,
        "batch_p50_ms": batch_p50,
        "batch_p99_ms": batch_p99,
        "batch_qps": batch_qps,
        "speedup_single_vs_live": speedup_single,
        "speedup_batch_vs_live": speedup_batch,
    }


def cmd_full() -> int:
    lines = [
        "Serving benchmark: frozen-index retrieval vs live model scoring",
        f"top-{K} retrieval, train-item exclusion on, PUP 56/8, micro-batch {BATCH}",
        "",
    ]
    catalogs = []
    for n_users, n_items, live_queries, served_queries in CATALOGS:
        catalogs.append(
            bench_catalog(n_users, n_items, live_queries, served_queries, lines)
        )
    write_report("bench_serving", "\n".join(lines))

    smallest = catalogs[0]
    payload = {
        "benchmark": "serving_latency",
        "protocol": {
            "k": K, "micro_batch": BATCH, "cache": "disabled (pure compute)",
            "baseline": "live model scoring, measured in-run",
        },
        "catalogs": catalogs,
        "smoke_reference": {
            "catalog": {key: smallest[key] for key in ("n_users", "n_items")},
            "live_queries": smallest["live_queries"],
            "served_queries": smallest["served_queries"],
            "live_p50_ms": smallest["live_p50_ms"],
            "batch_p50_ms": smallest["batch_p50_ms"],
            "speedup_batch_vs_live": smallest["speedup_batch_vs_live"],
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {BENCH_PATH}")
    return 0


def cmd_smoke() -> int:
    """CI check: re-measure the smallest catalog, compare to the committed file.

    The gate is on the batched-serving speedup vs the in-run live baseline —
    both sides re-measured on this machine, so absolute runner speed cancels
    out; the check is a >30% regression against the committed speedup.
    """
    if not os.path.exists(BENCH_PATH):
        print(f"missing committed baseline {BENCH_PATH}; run without --smoke first", file=sys.stderr)
        return 2
    with open(BENCH_PATH) as handle:
        committed = json.load(handle)
    reference = committed["smoke_reference"]
    catalog = reference["catalog"]

    lines: list = []
    result = bench_catalog(
        catalog["n_users"], catalog["n_items"],
        reference["live_queries"], reference["served_queries"], lines,
    )
    print("\n".join(lines))

    measured = result["speedup_batch_vs_live"]
    floor = (1.0 - REGRESSION_TOLERANCE) * reference["speedup_batch_vs_live"]
    print(
        f"batched serving: {measured:.1f}x live (committed "
        f"{reference['speedup_batch_vs_live']:.1f}x; floor {floor:.1f}x)"
    )
    if measured < floor:
        print(
            f"FAIL: batched-serving speedup regressed more than "
            f"{REGRESSION_TOLERANCE:.0%} against the committed BENCH_serving.json",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick regression check against the committed BENCH_serving.json",
    )
    args = parser.parse_args()
    return cmd_smoke() if args.smoke else cmd_full()


if __name__ == "__main__":
    raise SystemExit(main())
