"""Training-throughput benchmark: precision policy x fused kernels.

Trains PUP (paper hyper-parameters) on the synthetic Yelp dataset under
three compute recipes and reports triples/sec and epoch wall-time:

* ``f64_unfused`` — float64, composed loss ops (the pre-refactor recipe on
  the post-refactor substrate);
* ``f64_fused``   — float64 + single-node BPR/L2 kernels + in-place Adam;
* ``f32_fused``   — float32 end to end (the recommended fast recipe).

The committed ``BENCH_training.json`` at the repo root records these
numbers plus the measured *pre-refactor* throughput (the actual code state
before the compute-stack refactor, for the honest before/after); the
acceptance gate for the refactor is ``f32_fused >= 2x pre_refactor``.

Usage::

    python benchmarks/bench_training.py            # full protocol, rewrites
                                                   # BENCH_training.json
    python benchmarks/bench_training.py --smoke    # quick CI check against
                                                   # the committed baseline
                                                   # (>30% regression fails)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict

from repro.data import load_dataset
from repro.experiments import PAPER_HPARAMS, build_model
from repro.nn import precision
from repro.train import TrainConfig, Trainer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_training.json")

#: measured with the pre-refactor code (commit 97a2b2c: float64-only stack,
#: composed losses, allocating Adam, per-forward adjacency transposes,
#: Python-loop negative sampling) under the full protocol below, on the
#: machine that produced the committed BENCH_training.json
PRE_REFACTOR = {
    "triples_per_sec": 29014.0,
    "recipe": "float64, composed losses, allocating Adam, per-forward "
    "adjacency transpose, per-element negative-sampling membership",
    "measured_at_commit": "97a2b2c (pre compute-stack refactor)",
}

ARMS = (
    ("f64_unfused", "float64", False),
    ("f64_fused", "float64", True),
    ("f32_fused", "float32", True),
)

#: CI gate: fail when throughput drops below (1 - this) of the committed value
REGRESSION_TOLERANCE = 0.30


def _bench_arm(dataset, dtype: str, fused: bool, epochs: int, seed: int = 0) -> Dict:
    """One recipe: build under the precision policy, 1 warmup + timed epochs."""
    with precision(dtype):
        model = build_model("pup", dataset, seed=seed, **PAPER_HPARAMS["pup"])
        warmup = TrainConfig(epochs=1, batch_size=1024, seed=seed, lr_milestones=(), fused_kernels=fused)
        Trainer(model, dataset, warmup).fit()
        config = TrainConfig(
            epochs=epochs, batch_size=1024, seed=seed, lr_milestones=(), fused_kernels=fused
        )
        result = Trainer(model, dataset, config).fit()
    profile = result.profile
    return {
        "triples_per_sec": profile["triples_per_sec"],
        "epoch_seconds": profile["train_seconds"] / epochs,
        "final_loss": result.final_loss,
        "phase_share": {
            name: round(info["share"], 4) for name, info in profile["phases"].items()
        },
    }


def run_benchmark(scale: float, epochs: int, arm_names=None) -> Dict:
    dataset, _ = load_dataset("yelp", seed=0, scale=scale)
    arms: Dict[str, Dict] = {}
    for name, dtype, fused in ARMS:
        if arm_names is not None and name not in arm_names:
            continue
        arms[name] = _bench_arm(dataset, dtype, fused, epochs)
        print(
            f"  {name:<12} {arms[name]['triples_per_sec']:>10,.0f} triples/s  "
            f"epoch {arms[name]['epoch_seconds']*1e3:7.1f} ms  "
            f"loss {arms[name]['final_loss']:.4f}"
        )
    return {
        "dataset": {"name": "yelp", "scale": scale, "seed": 0, "triples": len(dataset.train)},
        "protocol": {"warmup_epochs": 1, "timed_epochs": epochs, "batch_size": 1024, "seed": 0},
        "arms": arms,
    }


def cmd_full() -> int:
    print("full protocol (yelp scale 4.0, 3 timed epochs):")
    report = run_benchmark(scale=4.0, epochs=3)
    print("smoke protocol (yelp scale 1.0, 2 timed epochs):")
    smoke = run_benchmark(scale=1.0, epochs=2)

    fast = report["arms"]["f32_fused"]["triples_per_sec"]
    payload = {
        "benchmark": "training_throughput",
        "model": "pup",
        **report,
        "pre_refactor": PRE_REFACTOR,
        "speedup_f32_fused_vs_pre_refactor": round(fast / PRE_REFACTOR["triples_per_sec"], 3),
        "speedup_f32_fused_vs_f64_unfused": round(
            fast / report["arms"]["f64_unfused"]["triples_per_sec"], 3
        ),
        "smoke_reference": {
            "dataset": smoke["dataset"],
            "protocol": smoke["protocol"],
            "f32_fused_triples_per_sec": smoke["arms"]["f32_fused"]["triples_per_sec"],
            "f64_unfused_triples_per_sec": smoke["arms"]["f64_unfused"]["triples_per_sec"],
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\nf32_fused is {payload['speedup_f32_fused_vs_pre_refactor']:.2f}x the "
        f"pre-refactor baseline ({PRE_REFACTOR['triples_per_sec']:,.0f} triples/s)"
    )
    print(f"wrote {BENCH_PATH}")
    return 0


def cmd_smoke() -> int:
    """CI check: re-measure the smoke protocol, compare to the committed file.

    Absolute triples/sec is machine-dependent (the committed baseline was
    measured on one dev machine; CI runners differ), so the gate normalizes
    by machine speed: the in-run ``f64_unfused`` arm re-measures the same
    hardware, and the check is that ``f32_fused`` did not lose more than the
    tolerance relative to its *expected* throughput on this machine
    (``committed_f32 * measured_f64_unfused / committed_f64_unfused``).
    """
    if not os.path.exists(BENCH_PATH):
        print(f"missing committed baseline {BENCH_PATH}; run without --smoke first", file=sys.stderr)
        return 2
    with open(BENCH_PATH) as handle:
        committed = json.load(handle)
    reference = committed["smoke_reference"]
    scale = reference["dataset"]["scale"]
    epochs = reference["protocol"]["timed_epochs"]

    print(f"smoke protocol (yelp scale {scale}, {epochs} timed epochs):")
    # Only the two arms the gate reads: the optimized recipe under test and
    # the f64_unfused machine-speed calibrator.
    report = run_benchmark(scale=scale, epochs=epochs, arm_names=("f64_unfused", "f32_fused"))
    measured = report["arms"]["f32_fused"]["triples_per_sec"]
    machine_factor = (
        report["arms"]["f64_unfused"]["triples_per_sec"]
        / reference["f64_unfused_triples_per_sec"]
    )
    expected = reference["f32_fused_triples_per_sec"] * machine_factor
    floor = (1.0 - REGRESSION_TOLERANCE) * expected

    print(
        f"\nf32_fused: {measured:,.0f} triples/s; expected on this machine "
        f"{expected:,.0f} (committed {reference['f32_fused_triples_per_sec']:,.0f} "
        f"x machine factor {machine_factor:.2f}); floor {floor:,.0f}"
    )
    if measured < floor:
        print(
            f"FAIL: triples/sec regressed more than {REGRESSION_TOLERANCE:.0%} "
            "against the committed BENCH_training.json baseline",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick regression check against the committed BENCH_training.json",
    )
    args = parser.parse_args()
    return cmd_smoke() if args.smoke else cmd_full()


if __name__ == "__main__":
    raise SystemExit(main())
