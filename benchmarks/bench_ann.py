"""Approximate-retrieval benchmark: the recall-gated nprobe sweep.

Measures bulk top-50 retrieval for a population of users against a
production-scale catalog under four regimes:

* ``exact`` — the optimized exact path (one :class:`BatchRuntime` serial
  pass over the full catalog), measured **in-run** so every speedup below
  is against this machine, not a stale number;
* ``nprobe{N}_exact`` — the IVF two-stage search probing ``N`` lists with
  the exact fine-stage scorer, swept across operating points;
* ``nprobe{N}_int8`` — the same probe with the int8 integer-accumulated
  fine scorer (the quantized companion);
* ``nprobe{N}_pq`` — the same probe with product-quantized ADC candidate
  scoring followed by the mandatory exact re-rank (16x item-side memory
  reduction vs the f32 factors).

Each arm reports users/sec, speedup vs the in-run exact baseline, and
recall@50 **and** recall@10 against the exact rankings (via
:func:`repro.eval.ann.ann_recall_at_k`).

On top of the sweep, the full protocol runs the **tiered 1M-item
layout**: a synthetic 1,000,000-item clustered catalog is built with PQ
fine scoring (``train_sample`` + centroid-shift early stopping keep the
build tractable), saved as an ``include_items`` dir archive, and
reloaded through :class:`~repro.serving.ann.TieredIVFIndex` under a
declared memory ceiling — the run fails unless the reported hot tier
stays under the ceiling and recall clears the floor.

The index is a synthetic *clustered* factorization in PUP's two-branch
layout (global + small side branch with an item constant): timing does not
depend on weight values, but IVF recall does depend on the embedding
geometry, and trained recommendation catalogs cluster (popularity,
category, price structure) — so items are drawn from latent cluster
centers rather than i.i.d. noise.  The construction is deterministic given
the seed, which is what makes the smoke gate's recall floor stable in CI.

Committed gates (checked before writing ``BENCH_ann.json``, re-checked by
``--smoke`` in CI):

* the default operating point (``build_ivf`` defaults, exact fine stage)
  must reach **recall@50 >= 0.95**, **recall@10 >= 0.95**, and **>= 3x**
  the in-run exact baseline;
* the PQ arm at the default probe must hold the same recall floors after
  its exact re-rank, at **>= 16x** item-side memory reduction vs f32;
* full probe (exact fine stage) must reproduce the exact rankings
  **bit-identically**;
* the tiered layout must keep its resident (hot) bytes under the declared
  memory ceiling while clearing the recall floor;
* ``--smoke`` fails if the default operating point's speedup falls more
  than 30% below the committed value (speedups are already normalized by
  the in-run baseline, so runner speed cancels out), recall dips below
  the floor, or the scaled-down tiered run breaks its ceiling.

Usage::

    python benchmarks/bench_ann.py           # full protocol, rewrites
                                             # BENCH_ann.json
    python benchmarks/bench_ann.py --smoke   # quick CI check against the
                                             # committed baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, Optional

import numpy as np

from repro.core.base import ScoreBranch
from repro.eval.ann import ann_recall_at_k
from repro.runtime import BatchRuntime, RuntimeConfig
from repro.serving.ann import TieredIndexConfig, TieredIVFIndex, build_ivf
from repro.serving.index import EmbeddingIndex

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_ann.json")

K = 50
K_SMALL = 10

#: acceptance gates for the gated operating points
RECALL_FLOOR = 0.95
SPEEDUP_FLOOR = 3.0

#: PQ must compress the f32 item factors by at least this much
MEMORY_REDUCTION_FLOOR = 16.0

#: CI gate: fail when the default-op speedup drops below (1 - this) of committed
REGRESSION_TOLERANCE = 0.30

#: the tiered 1M-item protocol (full run only; smoke re-runs a scaled copy)
TIERED_PROTOCOL = {
    "n_users": 8000,
    "n_items": 1_000_000,
    "evaluated_users": 256,
    "memory_ceiling_bytes": 128 * 2**20,
    "train_sample": 200_000,
}
TIERED_SMOKE_PROTOCOL = {
    "n_users": 2000,
    "n_items": 120_000,
    "evaluated_users": 400,
    "memory_ceiling_bytes": 16 * 2**20,
    "train_sample": 40_000,
}


# ----------------------------------------------------------------------
# Synthetic clustered catalog in PUP's two-branch layout
# ----------------------------------------------------------------------
def clustered_index(
    n_users: int, n_items: int, dim: int = 56, side_dim: int = 8,
    n_clusters: int = 64, seed: int = 0,
) -> EmbeddingIndex:
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_clusters, dim))
    item_main = (
        centers[rng.integers(n_clusters, size=n_items)]
        + 0.35 * rng.normal(size=(n_items, dim))
    ).astype(np.float32)
    user_main = (
        centers[rng.integers(n_clusters, size=n_users)]
        + 0.5 * rng.normal(size=(n_users, dim))
    ).astype(np.float32)
    item_side = (0.3 * rng.normal(size=(n_items, side_dim))).astype(np.float32)
    user_side = (0.3 * rng.normal(size=(n_users, side_dim))).astype(np.float32)
    item_const = (0.1 * rng.normal(size=n_items)).astype(np.float32)
    branches = [
        ScoreBranch(user=user_main, item=item_main),
        ScoreBranch(user=user_side, item=item_side, item_const=item_const),
    ]
    counts = rng.integers(3, 15, size=n_users)
    indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate(
        [np.sort(rng.choice(n_items, count, replace=False)) for count in counts]
    )
    return EmbeddingIndex(
        branches,
        item_categories=np.zeros(n_items, dtype=np.int64),
        item_price_levels=np.zeros(n_items, dtype=np.int64),
        n_price_levels=5,
        n_categories=1,
        exclude_indptr=indptr,
        exclude_indices=indices,
        item_popularity=np.ones(n_items),
        model_name="bench_ann_clustered",
    )


def _best_of(fn, reps: int):
    """(best seconds, last result) over ``reps`` timed passes + 1 warmup."""
    fn()
    best = np.inf
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ----------------------------------------------------------------------
def run_benchmark(
    n_users: int, n_items: int, eval_users: int, reps: int,
    probe_factors=(1, 2), arm_names: Optional[set] = None,
) -> Dict:
    index = clustered_index(n_users, n_items, seed=0)
    users = np.arange(eval_users)
    csr = (index.exclude_indptr, index.exclude_indices)

    built = time.perf_counter()
    ivf = build_ivf(index, seed=0, pq=True)
    build_seconds = time.perf_counter() - built

    runtime = BatchRuntime(index, RuntimeConfig(), exclude_csr=csr)
    try:
        seconds_exact, (_, exact_ids, _) = _best_of(
            lambda: runtime.rank(users, K), reps
        )
    finally:
        runtime.close()
    exact_rankings = {int(user): exact_ids[row] for row, user in enumerate(users)}
    arms: Dict[str, Dict] = {
        "exact": {
            "users_per_sec": eval_users / seconds_exact,
            "ms_per_pass": seconds_exact * 1e3,
            "recall_at_50": 1.0,
            "recall_at_10": 1.0,
            "speedup_vs_exact": 1.0,
        }
    }
    print(
        f"  {'exact':<20} {arms['exact']['users_per_sec']:>9,.0f} users/s"
        f"  ({seconds_exact*1e3:7.1f} ms/pass)  recall@{K}=1.000"
    )

    # In-run parity proof: full probe (exact fine stage) must reproduce the
    # exact rankings bitwise.  The scorer is pinned because pq is the
    # index's default fine scorer once PQ codebooks are attached.
    full_ids, _ = ivf.search(
        users, K, nprobe=ivf.n_lists, scorer="exact", exclude_csr=csr
    )
    if not np.array_equal(full_ids, exact_ids):
        print("FAIL: full-probe IVF search diverges from exact rankings", file=sys.stderr)
        raise SystemExit(1)

    sweep = []
    for factor in probe_factors:
        nprobe = min(ivf.nprobe * factor, ivf.n_lists)
        for scorer in ("exact", "int8", "pq"):
            sweep.append((f"nprobe{nprobe}_{scorer}", nprobe, scorer))
    for name, nprobe, scorer in sweep:
        if arm_names is not None and name not in arm_names:
            continue
        seconds, (ids, _) = _best_of(
            lambda: ivf.search(users, K, nprobe=nprobe, scorer=scorer, exclude_csr=csr),
            reps,
        )
        rankings = {int(user): ids[row] for row, user in enumerate(users)}
        recall = ann_recall_at_k(exact_rankings, rankings, K)
        recall_small = ann_recall_at_k(exact_rankings, rankings, K_SMALL)
        arms[name] = {
            "nprobe": int(nprobe),
            "scorer": scorer,
            "users_per_sec": eval_users / seconds,
            "ms_per_pass": seconds * 1e3,
            "recall_at_50": recall,
            "recall_at_10": recall_small,
            "speedup_vs_exact": seconds_exact / seconds,
        }
        print(
            f"  {name:<20} {arms[name]['users_per_sec']:>9,.0f} users/s"
            f"  ({seconds*1e3:7.1f} ms/pass)  recall@{K}={recall:.3f}"
            f"  recall@{K_SMALL}={recall_small:.3f}"
            f"  {arms[name]['speedup_vs_exact']:5.2f}x"
        )

    item_factors_bytes = sum(b.item.nbytes for b in index.branches)
    pq_codes_bytes = ivf.pq.memory_bytes()
    return {
        "catalog": {
            "n_users": n_users, "n_items": n_items, "evaluated_users": eval_users,
            "layout": "clustered two-branch float32 (PUP shape), seed 0",
        },
        "ivf": {
            "n_lists": ivf.n_lists,
            "default_nprobe": ivf.nprobe,
            "build_seconds": build_seconds,
            "int8_codes_bytes": ivf.quantized.memory_bytes(),
            "pq_codes_bytes": pq_codes_bytes,
            "item_factors_bytes": item_factors_bytes,
            "memory_reduction_vs_f32": item_factors_bytes / pq_codes_bytes,
        },
        "protocol": {
            "k": K, "exclude_train": True,
            "warmup_passes": 1, "timed_passes": reps, "timing": "best of timed passes",
            "parity": "full-probe rankings bit-identical to exact (asserted in-run)",
        },
        "default_operating_point": f"nprobe{ivf.nprobe}_exact",
        "pq_operating_point": f"nprobe{ivf.nprobe}_pq",
        "arms": arms,
    }


# ----------------------------------------------------------------------
def run_tiered(protocol: Dict, reps: int) -> Dict:
    """The hot/cold tiered layout under a declared memory ceiling.

    Builds a clustered catalog at ``protocol`` scale with PQ fine scoring
    (no int8 companion — the tiered layout's resident floor should be the
    PQ codes), round-trips it through an ``include_items`` dir archive,
    and reloads it tiered.  Reports whether the resident hot tier held
    the ceiling plus recall/speed at the default operating point.
    """
    n_items = protocol["n_items"]
    eval_users = protocol["evaluated_users"]
    ceiling = protocol["memory_ceiling_bytes"]
    index = clustered_index(protocol["n_users"], n_items, seed=0)
    users = np.arange(eval_users)
    csr = (index.exclude_indptr, index.exclude_indices)

    built = time.perf_counter()
    ivf = build_ivf(
        index, seed=0, quantize=False, pq=True,
        tol=1e-3, train_sample=protocol["train_sample"],
    )
    build_seconds = time.perf_counter() - built

    runtime = BatchRuntime(index, RuntimeConfig(), exclude_csr=csr)
    try:
        seconds_exact, (_, exact_ids, _) = _best_of(
            lambda: runtime.rank(users, K), reps
        )
    finally:
        runtime.close()
    exact_rankings = {int(user): exact_ids[row] for row, user in enumerate(users)}

    with tempfile.TemporaryDirectory() as tmp:
        path = ivf.save(os.path.join(tmp, "ann"), format="dir", include_items=True)
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(memory_ceiling_bytes=ceiling)
        )
        report = tiered.memory_report()
        seconds, (ids, _) = _best_of(
            lambda: tiered.search(users, K, exclude_csr=csr), reps
        )
    rankings = {int(user): ids[row] for row, user in enumerate(users)}
    recall = ann_recall_at_k(exact_rankings, rankings, K)
    recall_small = ann_recall_at_k(exact_rankings, rankings, K_SMALL)
    result = {
        "protocol": dict(protocol),
        "kind": report["kind"],
        "n_lists": int(tiered.n_lists),
        "hot_lists": report["hot_lists"],
        "nprobe": int(tiered.nprobe),
        "build_seconds": build_seconds,
        "resident_hot_bytes": report["tiers"]["hot"],
        "paged_cold_bytes": report["tiers"]["cold"],
        "ceiling_held": bool(report["tiers"]["hot"] <= ceiling),
        "users_per_sec": eval_users / seconds,
        "speedup_vs_exact": seconds_exact / seconds,
        "exact_users_per_sec": eval_users / seconds_exact,
        "recall_at_50": recall,
        "recall_at_10": recall_small,
    }
    print(
        f"  tiered {report['kind']:<13} {result['users_per_sec']:>9,.0f} users/s"
        f"  ({seconds*1e3:7.1f} ms/pass)  recall@{K}={recall:.3f}"
        f"  recall@{K_SMALL}={recall_small:.3f}  {result['speedup_vs_exact']:5.2f}x"
    )
    print(
        f"  resident {report['tiers']['hot'] / 2**20:,.1f} MB"
        f" (ceiling {ceiling / 2**20:,.0f} MB,"
        f" {report['hot_lists']}/{tiered.n_lists} lists hot),"
        f" cold {report['tiers']['cold'] / 2**20:,.1f} MB mmap-paged:"
        f" {'held' if result['ceiling_held'] else 'EXCEEDED'}"
    )
    return result


def _gate_arm(report: Dict, arm_name: str, what: str) -> bool:
    """True when the arm clears both recall floors; prints failures."""
    arm = report["arms"][arm_name]
    ok = True
    for key, k in (("recall_at_50", K), ("recall_at_10", K_SMALL)):
        if arm[key] < RECALL_FLOOR:
            print(
                f"FAIL: {what} ({arm_name}) recall@{k} {arm[key]:.3f} "
                f"< {RECALL_FLOOR}",
                file=sys.stderr,
            )
            ok = False
    return ok


def _gate_tiered(tiered: Dict) -> bool:
    ok = True
    if not tiered["ceiling_held"]:
        print(
            f"FAIL: tiered resident bytes {tiered['resident_hot_bytes']:,} exceed "
            f"the declared ceiling {tiered['protocol']['memory_ceiling_bytes']:,}",
            file=sys.stderr,
        )
        ok = False
    if tiered["recall_at_50"] < RECALL_FLOOR:
        print(
            f"FAIL: tiered recall@{K} {tiered['recall_at_50']:.3f} < {RECALL_FLOOR}",
            file=sys.stderr,
        )
        ok = False
    return ok


def _default_arm(report: Dict) -> Dict:
    return report["arms"][report["default_operating_point"]]


def cmd_full(reps: int) -> int:
    print(f"full protocol (48k-item clustered catalog, best of {reps} passes):")
    report = run_benchmark(n_users=4000, n_items=48_000, eval_users=2000, reps=reps)
    # The smoke catalog must be large enough that the speedup is pruning-
    # dominated rather than dispatch-overhead-dominated, or the CI ratio
    # gets noisy on shared runners; 24k items keeps the re-measure under a
    # minute while leaving a stable margin over the regression floor.
    print(f"smoke protocol (24k-item clustered catalog, best of {reps} passes):")
    smoke = run_benchmark(n_users=2000, n_items=24_000, eval_users=800, reps=reps)
    print(
        f"tiered protocol ({TIERED_PROTOCOL['n_items']:,}-item catalog, "
        f"{TIERED_PROTOCOL['memory_ceiling_bytes'] / 2**20:,.0f} MB ceiling):"
    )
    tiered = run_tiered(TIERED_PROTOCOL, reps=1)
    print(
        f"tiered smoke protocol ({TIERED_SMOKE_PROTOCOL['n_items']:,}-item "
        f"catalog, {TIERED_SMOKE_PROTOCOL['memory_ceiling_bytes'] / 2**20:,.0f} "
        "MB ceiling):"
    )
    tiered_smoke = run_tiered(TIERED_SMOKE_PROTOCOL, reps=reps)

    failed = False
    if not _gate_arm(report, report["default_operating_point"], "default operating point"):
        failed = True
    if not _gate_arm(report, report["pq_operating_point"], "PQ operating point"):
        failed = True
    default = _default_arm(report)
    if default["speedup_vs_exact"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: default operating point speedup {default['speedup_vs_exact']:.2f}x "
            f"< {SPEEDUP_FLOOR}x",
            file=sys.stderr,
        )
        failed = True
    reduction = report["ivf"]["memory_reduction_vs_f32"]
    if reduction < MEMORY_REDUCTION_FLOOR:
        print(
            f"FAIL: PQ memory reduction {reduction:.1f}x < "
            f"{MEMORY_REDUCTION_FLOOR}x vs the f32 item factors",
            file=sys.stderr,
        )
        failed = True
    if not _gate_tiered(tiered) or not _gate_tiered(tiered_smoke):
        failed = True
    if failed:
        print("not committing numbers", file=sys.stderr)
        return 1

    payload = {
        "benchmark": "approximate_retrieval",
        **report,
        "gates": {
            "recall_floor": RECALL_FLOOR,
            "speedup_floor": SPEEDUP_FLOOR,
            "memory_reduction_floor": MEMORY_REDUCTION_FLOOR,
            "regression_tolerance": REGRESSION_TOLERANCE,
        },
        "tiered": tiered,
        "smoke_reference": {
            "catalog": smoke["catalog"],
            "default_operating_point": smoke["default_operating_point"],
            "pq_operating_point": smoke["pq_operating_point"],
            "speedup_vs_exact": _default_arm(smoke)["speedup_vs_exact"],
            "recall_at_50": _default_arm(smoke)["recall_at_50"],
            "pq_recall_at_50": smoke["arms"][smoke["pq_operating_point"]]["recall_at_50"],
            "exact_users_per_sec": smoke["arms"]["exact"]["users_per_sec"],
            "tiered": tiered_smoke,
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\ndefault operating point ({report['default_operating_point']}): "
        f"{default['speedup_vs_exact']:.2f}x exact at recall@{K}="
        f"{default['recall_at_50']:.3f}; PQ {reduction:.1f}x less item memory "
        f"at recall@{K}="
        f"{report['arms'][report['pq_operating_point']]['recall_at_50']:.3f}"
    )
    print(f"wrote {BENCH_PATH}")
    return 0


def cmd_smoke(reps: int) -> int:
    """CI check: re-measure the smoke protocol, compare to the committed file.

    The speedup is a ratio of two in-run measurements (ANN vs exact on the
    same machine), so no machine-speed normalization is needed; the gates
    are that it has not regressed more than the tolerance against the
    committed smoke speedup, that recall@50 still clears the floor on both
    the exact and PQ arms, and that the scaled-down tiered run still holds
    its declared memory ceiling.
    """
    if not os.path.exists(BENCH_PATH):
        print(f"missing committed baseline {BENCH_PATH}; run without --smoke first", file=sys.stderr)
        return 2
    with open(BENCH_PATH) as handle:
        committed = json.load(handle)
    reference = committed["smoke_reference"]
    catalog = reference["catalog"]

    print(f"smoke protocol ({catalog['n_items']}-item catalog, best of {reps} passes):")
    report = run_benchmark(
        n_users=catalog["n_users"], n_items=catalog["n_items"],
        eval_users=catalog["evaluated_users"], reps=reps,
        probe_factors=(1,),
        arm_names={
            reference["default_operating_point"],
            reference["pq_operating_point"],
        },
    )
    if report["default_operating_point"] != reference["default_operating_point"]:
        print(
            f"committed baseline was measured at "
            f"{reference['default_operating_point']} but the current defaults "
            f"resolve to {report['default_operating_point']}; regenerate "
            f"BENCH_ann.json (run without --smoke)",
            file=sys.stderr,
        )
        return 2
    default = _default_arm(report)
    pq_arm = report["arms"][report["pq_operating_point"]]

    tiered_protocol = reference["tiered"]["protocol"]
    print(
        f"tiered smoke protocol ({tiered_protocol['n_items']:,}-item catalog, "
        f"{tiered_protocol['memory_ceiling_bytes'] / 2**20:,.0f} MB ceiling):"
    )
    tiered = run_tiered(tiered_protocol, reps=reps)

    floor = (1.0 - REGRESSION_TOLERANCE) * reference["speedup_vs_exact"]
    print(
        f"\ndefault operating point: {default['speedup_vs_exact']:.2f}x exact "
        f"(committed {reference['speedup_vs_exact']:.2f}x; floor {floor:.2f}x), "
        f"recall@{K}={default['recall_at_50']:.3f}, "
        f"pq recall@{K}={pq_arm['recall_at_50']:.3f} (floor {RECALL_FLOOR})"
    )
    failed = False
    if default["recall_at_50"] < RECALL_FLOOR:
        print(
            f"FAIL: recall@{K} fell below the {RECALL_FLOOR} floor",
            file=sys.stderr,
        )
        failed = True
    if pq_arm["recall_at_50"] < RECALL_FLOOR:
        print(
            f"FAIL: PQ-arm recall@{K} fell below the {RECALL_FLOOR} floor",
            file=sys.stderr,
        )
        failed = True
    if default["speedup_vs_exact"] < floor:
        print(
            f"FAIL: speedup regressed more than {REGRESSION_TOLERANCE:.0%} "
            "against the committed BENCH_ann.json baseline",
            file=sys.stderr,
        )
        failed = True
    if not _gate_tiered(tiered):
        failed = True
    if failed:
        return 1
    print("PASS")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick regression check against the committed BENCH_ann.json",
    )
    parser.add_argument("--reps", type=int, default=None, help="timed passes per arm")
    args = parser.parse_args()
    reps = args.reps if args.reps is not None else (3 if args.smoke else 5)
    return cmd_smoke(reps) if args.smoke else cmd_full(reps)


if __name__ == "__main__":
    raise SystemExit(main())
