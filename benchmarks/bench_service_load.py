"""Service load benchmark: the gateway under million-user-shaped traffic.

For each workload scale this builds a frozen PUP index and drives the same
deterministic zipfian workload (hot-user skew, 5% cold users, mixed k)
through three arms:

* **sync** — the synchronous ``submit``/``flush`` micro-batch path, chunks
  of 64, single thread: the in-run baseline every gated number is
  normalized against;
* **gateway closed-loop** — 8 threads through the
  :class:`~repro.serving.gateway.ServingGateway` (bounded admission queue,
  dual-trigger batching at 2 ms), each thread waiting for its answer
  before asking again: sustainable concurrent throughput and end-to-end
  p50/p99 from :class:`~repro.serving.stats.ServingStats`;
* **gateway burst** — an open-loop on/off arrival schedule offered far
  above capacity into a deliberately small queue: the run must hold the
  queue-depth bound and account for every shed request in
  ``gateway_shed_total`` (correctness gates, not speed gates).

A parity pass also re-answers a workload prefix synchronously and demands
bit-identical ids and scores — concurrency must never change results.

Besides the report (``benchmarks/results/bench_service_load.txt``) the
full run writes the repo-root ``BENCH_service_load.json``.  CI re-measures
the smallest scale with ``--smoke`` and fails when the gateway's
throughput ratio or p99 ratio (both normalized by the in-run sync
baseline, so absolute runner speed cancels out) regresses more than 30%
against the committed values — or when any correctness gate (parity,
depth bound, shed accounting) breaks at all.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_load.py          # full run,
                                                                    # rewrites BENCH_service_load.json
    PYTHONPATH=src python benchmarks/bench_service_load.py --smoke  # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

from _harness import write_report
from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.loadgen import (
    ArrivalSchedule,
    WorkloadConfig,
    build_workload,
    run_closed_loop,
    run_open_loop,
)
from repro.serving import (
    GatewayConfig,
    RecommenderService,
    ServingGateway,
    export_index,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_service_load.json")

K = 10
SYNC_BATCH = 64
THREADS = 8
MAX_WAIT_MS = 2.0
QUEUE_DEPTH = 256
BURST_QUEUE_DEPTH = 32
ZIPF_S = 1.1
COLD_FRACTION = 0.05
SCALES = (
    # (n_users, n_items, n_requests)
    (800, 4_000, 1_200),
    (2_000, 10_000, 1_200),
)
PARITY_REQUESTS = 200

#: CI gate: fail when a gated ratio regresses more than this vs committed
REGRESSION_TOLERANCE = 0.30


def build_index(n_users: int, n_items: int):
    dataset, _ = generate(
        SyntheticConfig(
            n_users=n_users, n_items=n_items, n_categories=8, n_price_levels=5,
            interactions_per_user=8, seed=1,
        )
    )
    model = pup_full(dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0))
    model.eval()
    return export_index(model, dataset)


def make_workload(n_users: int, n_requests: int):
    config = WorkloadConfig(
        n_requests=n_requests, n_users=n_users, zipf_s=ZIPF_S,
        cold_fraction=COLD_FRACTION, k_mix=((K, 0.8), (50, 0.2)),
    )
    return build_workload(config, seed=7)


def make_service(index) -> RecommenderService:
    return RecommenderService(index, default_k=K, cache_capacity=0, max_batch_size=SYNC_BATCH)


def run_sync_arm(index, workload) -> Dict[str, float]:
    """In-run baseline: the pre-gateway micro-batch path, one thread."""
    service = make_service(index)
    began = time.perf_counter()
    for start in range(0, len(workload), SYNC_BATCH):
        chunk = workload[start : start + SYNC_BATCH]
        pendings = [
            service.submit(r.user, k=r.k, price_profile=r.price_profile) for r in chunk
        ]
        service.flush()
        for pending in pendings:
            pending.result(timeout=60.0)
    duration = time.perf_counter() - began
    snapshot = service.stats.snapshot()
    return {
        "qps": len(workload) / duration,
        "p50_ms": snapshot["latency_p50_ms"],
        "p99_ms": snapshot["latency_p99_ms"],
    }


def run_parity_check(index, n_requests: int = PARITY_REQUESTS) -> bool:
    """Gateway answers must be bit-identical to sync ``recommend_many``."""
    config = WorkloadConfig(
        n_requests=n_requests, n_users=index.n_users, zipf_s=ZIPF_S,
        cold_fraction=COLD_FRACTION, k_mix=((K, 1.0),),
    )
    workload = build_workload(config, seed=21)
    users = [r.user for r in workload]
    expected = make_service(index).recommend_many(users, k=K)

    service = make_service(index)
    answers: Dict[int, object] = {}
    import threading

    lock = threading.Lock()
    with ServingGateway(
        service, GatewayConfig(max_queue_depth=QUEUE_DEPTH, max_wait_ms=MAX_WAIT_MS)
    ) as gateway:
        def worker(shard: List) -> None:
            for i, request in shard:
                rec = gateway.submit(request.user, k=request.k).result(timeout=60.0)
                with lock:
                    answers[i] = rec

        shards = [list(enumerate(workload))[t::4] for t in range(4)]
        pool = [threading.Thread(target=worker, args=(s,)) for s in shards]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    return all(
        np.array_equal(answers[i].items, expected[i].items)
        and np.array_equal(answers[i].scores, expected[i].scores)
        for i in range(len(workload))
    )


def bench_scale(n_users: int, n_items: int, n_requests: int, lines: List[str]) -> Dict:
    index = build_index(n_users, n_items)
    workload = make_workload(n_users, n_requests)

    sync = run_sync_arm(index, workload)

    gateway_config = GatewayConfig(max_queue_depth=QUEUE_DEPTH, max_wait_ms=MAX_WAIT_MS)
    with ServingGateway(make_service(index), gateway_config) as gateway:
        closed = run_closed_loop(gateway, workload, threads=THREADS, result_timeout_s=60.0)

    burst_config = GatewayConfig(
        max_queue_depth=BURST_QUEUE_DEPTH, max_wait_ms=10.0, max_batch_size=10_000
    )
    with ServingGateway(make_service(index), burst_config) as burst_gateway:
        schedule = ArrivalSchedule(mode="onoff", rate=100_000.0, on_s=0.05, off_s=0.02)
        burst = run_open_loop(burst_gateway, workload, schedule, result_timeout_s=60.0)
        shed_accounted = burst.n_shed.get("queue_full", 0) == burst_gateway.shed_count(
            "queue_full"
        )

    parity = run_parity_check(index)

    qps_ratio = closed.qps / sync["qps"]
    p99_ratio = closed.p99_ms / sync["p99_ms"]
    depth_bounded = burst.max_queue_depth <= BURST_QUEUE_DEPTH

    lines.append(
        f"catalog {n_items:>6d} items / {n_users:>5d} users   "
        f"({n_requests} requests, zipf s={ZIPF_S}, {COLD_FRACTION:.0%} cold)"
    )
    lines.append(
        f"  sync batch{SYNC_BATCH:<3d}   p50 {sync['p50_ms']:8.3f} ms   "
        f"p99 {sync['p99_ms']:8.3f} ms   {sync['qps']:9.0f} QPS   (in-run baseline)"
    )
    lines.append(
        f"  gateway x{THREADS}     p50 {closed.p50_ms:8.3f} ms   "
        f"p99 {closed.p99_ms:8.3f} ms   {closed.qps:9.0f} QPS   "
        f"(ratios: qps {qps_ratio:.2f}, p99 {p99_ratio:.2f})"
    )
    lines.append(
        f"  gateway burst   offered {burst.offered_qps:8.0f} QPS   "
        f"served {burst.qps:8.0f} QPS   shed {burst.shed_total:4d}   "
        f"max depth {burst.max_queue_depth}/{BURST_QUEUE_DEPTH} "
        f"{'(bounded)' if depth_bounded else '(VIOLATED)'}"
    )
    lines.append(f"  parity: {'bit-identical to sync path' if parity else 'MISMATCH'}")
    lines.append("")
    return {
        "n_users": n_users,
        "n_items": n_items,
        "n_requests": n_requests,
        "sync_qps": sync["qps"],
        "sync_p50_ms": sync["p50_ms"],
        "sync_p99_ms": sync["p99_ms"],
        "gateway_qps": closed.qps,
        "gateway_p50_ms": closed.p50_ms,
        "gateway_p99_ms": closed.p99_ms,
        "qps_ratio": qps_ratio,
        "p99_ratio": p99_ratio,
        "burst_offered_qps": burst.offered_qps,
        "burst_qps": burst.qps,
        "burst_shed": burst.shed_total,
        "burst_max_depth": burst.max_queue_depth,
        "burst_depth_bound": BURST_QUEUE_DEPTH,
        "burst_depth_bounded": depth_bounded,
        "burst_shed_accounted": shed_accounted,
        "parity": parity,
    }


def check_correctness_gates(result: Dict) -> List[str]:
    """The gates that must hold at any speed (smoke fails hard on these)."""
    problems = []
    if not result["parity"]:
        problems.append("gateway results are not bit-identical to the sync path")
    if not result["burst_depth_bounded"]:
        problems.append(
            f"burst queue depth {result['burst_max_depth']} exceeded the bound "
            f"{result['burst_depth_bound']}"
        )
    if not result["burst_shed_accounted"]:
        problems.append("runner shed ledger disagrees with gateway_shed_total")
    if result["burst_shed"] == 0:
        problems.append("overload burst shed nothing (backpressure never engaged)")
    return problems


def cmd_full() -> int:
    lines = [
        "Service load benchmark: concurrent gateway vs the sync micro-batch path",
        f"zipf s={ZIPF_S} + {COLD_FRACTION:.0%} cold, k mix 80/20 {K}/50, "
        f"{THREADS} closed-loop threads, max wait {MAX_WAIT_MS:g} ms",
        "",
    ]
    scales = []
    for n_users, n_items, n_requests in SCALES:
        result = bench_scale(n_users, n_items, n_requests, lines)
        problems = check_correctness_gates(result)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        scales.append(result)
    write_report("bench_service_load", "\n".join(lines))

    smallest = scales[0]
    payload = {
        "benchmark": "service_load",
        "protocol": {
            "k_mix": f"80% k={K}, 20% k=50",
            "zipf_s": ZIPF_S,
            "cold_fraction": COLD_FRACTION,
            "threads": THREADS,
            "max_wait_ms": MAX_WAIT_MS,
            "queue_depth": QUEUE_DEPTH,
            "burst_queue_depth": BURST_QUEUE_DEPTH,
            "sync_batch": SYNC_BATCH,
            "baseline": "single-thread sync micro-batch path, measured in-run",
        },
        "scales": scales,
        "smoke_reference": {
            "scale": {key: smallest[key] for key in ("n_users", "n_items", "n_requests")},
            "qps_ratio": smallest["qps_ratio"],
            "p99_ratio": smallest["p99_ratio"],
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {BENCH_PATH}")
    return 0


def cmd_smoke() -> int:
    """CI check: re-measure the smallest scale, compare to the committed file.

    Both gated numbers are ratios of two in-run measurements (gateway vs
    sync baseline on the same machine, same workload), so absolute runner
    speed cancels out.  Throughput fails below ``(1 - 30%)`` of the
    committed ratio; p99 fails above ``committed / (1 - 30%)``.  The
    correctness gates (parity, bounded depth, shed accounting) fail hard
    regardless of speed.
    """
    if not os.path.exists(BENCH_PATH):
        print(
            f"missing committed baseline {BENCH_PATH}; run without --smoke first",
            file=sys.stderr,
        )
        return 2
    with open(BENCH_PATH) as handle:
        committed = json.load(handle)
    reference = committed["smoke_reference"]
    scale = reference["scale"]

    lines: List[str] = []
    result = bench_scale(
        scale["n_users"], scale["n_items"], scale["n_requests"], lines
    )
    print("\n".join(lines))

    problems = check_correctness_gates(result)
    qps_floor = (1.0 - REGRESSION_TOLERANCE) * reference["qps_ratio"]
    p99_ceiling = reference["p99_ratio"] / (1.0 - REGRESSION_TOLERANCE)
    print(
        f"gateway/sync qps ratio {result['qps_ratio']:.2f} "
        f"(committed {reference['qps_ratio']:.2f}; floor {qps_floor:.2f})"
    )
    print(
        f"gateway/sync p99 ratio {result['p99_ratio']:.2f} "
        f"(committed {reference['p99_ratio']:.2f}; ceiling {p99_ceiling:.2f})"
    )
    if result["qps_ratio"] < qps_floor:
        problems.append(
            f"gateway QPS ratio regressed more than {REGRESSION_TOLERANCE:.0%} "
            "against the committed BENCH_service_load.json"
        )
    if result["p99_ratio"] > p99_ceiling:
        problems.append(
            f"gateway p99 ratio regressed more than {REGRESSION_TOLERANCE:.0%} "
            "against the committed BENCH_service_load.json"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick regression check against the committed BENCH_service_load.json",
    )
    args = parser.parse_args()
    return cmd_smoke() if args.smoke else cmd_full()


if __name__ == "__main__":
    raise SystemExit(main())
