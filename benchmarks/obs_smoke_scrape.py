"""CI gate for the live observability surface.

Launches ``repro serve --ann --gateway --metrics-port 0 --hold
--trace-out ...`` against an artifact directory, then validates
everything the endpoint promises:

* ``/healthz`` answers,
* ``/metrics`` is strictly Prometheus-parseable
  (:func:`repro.obs.parse_prometheus`) and contains every core serving
  series plus every gateway family (the gateway pre-seeds its label
  series, so shed/flush-trigger families are scrapeable from request one),
  including a live ``ann_index_bytes{tier,kind}`` hot-tier series for the
  attached ANN index,
* ``/stats`` is JSON with the stable :meth:`ServingStats.snapshot` keys
  (now including the ``ann_index_bytes_*`` tier totals),
* the written Chrome trace is valid trace-event JSON holding one complete
  span tree per served request, including the ``gateway.admit`` /
  ``gateway.batch`` spans the gateway wraps around admission and flushes
  and the ``ann.coarse`` / ``ann.merge`` spans of the two-stage search.

Any violation exits non-zero, which is the CI failure.

Usage::

    PYTHONPATH=src python benchmarks/obs_smoke_scrape.py <artifacts_dir>
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.request

from repro.obs import parse_prometheus

#: metric families the serving path must expose (histograms appear in the
#: exposition as _bucket/_sum/_count samples of these family names)
REQUIRED_FAMILIES = (
    "serving_requests_total",
    "serving_cache_lookups_total",
    "serving_batches_total",
    "serving_items_scored_total",
    "serving_request_latency_seconds",
    "serving_queue_wait_seconds",
    "serving_batch_duration_seconds",
    "serving_queue_depth",
    "serving_cache_entries",
    "ann_index_bytes",
)

#: gateway families (``repro serve --gateway``); the gateway pre-seeds the
#: shed-reason and flush-trigger series with zeros so every family appears
#: even on a run where nothing was shed
GATEWAY_FAMILIES = (
    "gateway_requests_total",
    "gateway_shed_total",
    "gateway_flushes_total",
    "gateway_batch_size",
    "gateway_queue_depth",
)

#: snapshot keys /stats must carry (the stable ServingStats surface)
REQUIRED_STATS_KEYS = (
    "requests", "warm_requests", "cold_requests", "batches",
    "latency_p50_ms", "latency_p99_ms", "qps",
    "queue_wait_p99_ms", "batch_duration_p50_ms",
    "ann_index_bytes_hot", "ann_index_bytes_cold", "ann_index_bytes_total",
)


def fetch(url: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def validate_exposition(text: str) -> None:
    samples = parse_prometheus(text)  # raises on any malformed line
    names = {name for name, _ in samples}
    for family in REQUIRED_FAMILIES + GATEWAY_FAMILIES:
        present = any(
            name == family or name.startswith(family + "_") for name in names
        )
        check(present, f"/metrics is missing core series {family!r}")
    for reason in ("queue_full", "rate_limited", "closed"):
        check(
            ("gateway_shed_total", (("reason", reason),)) in samples,
            f"gateway_shed_total is missing the pre-seeded {reason!r} series",
        )
    admitted = sum(
        value for (name, _), value in samples.items()
        if name == "gateway_requests_total"
    )
    check(admitted >= 4, f"expected >=4 admitted requests in /metrics, saw {admitted}")
    served = sum(
        value for (name, _), value in samples.items()
        if name == "serving_requests_total"
    )
    check(served >= 4, f"expected >=4 served requests in /metrics, saw {served}")
    latency_count = samples.get(("serving_request_latency_seconds_count", ()), 0)
    check(latency_count >= 1, "request latency histogram recorded no observations")
    # --ann attaches a real index, so the memory gauge must report a live
    # hot tier under a non-"none" kind (the family is pre-seeded, but the
    # pre-seed is kind="none" with zero bytes).
    ann_hot = {
        dict(labels).get("kind"): value
        for (name, labels), value in samples.items()
        if name == "ann_index_bytes" and dict(labels).get("tier") == "hot"
    }
    live_kinds = {k: v for k, v in ann_hot.items() if k != "none" and v > 0}
    check(
        bool(live_kinds),
        f"ann_index_bytes has no live hot-tier series (saw {ann_hot})",
    )


def validate_stats(payload: bytes) -> None:
    stats = json.loads(payload)
    missing = [key for key in REQUIRED_STATS_KEYS if key not in stats]
    check(not missing, f"/stats is missing keys {missing}")
    check(stats["requests"] >= 4, f"/stats reports {stats['requests']} requests")


def validate_trace(path: str) -> None:
    check(os.path.exists(path), f"trace file {path} was not written")
    with open(path) as handle:
        trace = json.load(handle)
    events = trace["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    check(
        any(e.get("ph") == "M" and e.get("name") == "process_name" for e in events),
        "trace has no process_name metadata event",
    )
    for event in complete:
        for field in ("name", "ts", "dur", "pid", "tid", "args"):
            check(field in event, f"span event missing {field!r}: {event}")
        check(event["dur"] >= 0, f"negative span duration: {event}")

    by_id = {e["args"]["span_id"]: e for e in complete}
    requests = [e for e in complete if e["name"] == "request"]
    check(len(requests) >= 4, f"expected >=4 request spans, found {len(requests)}")
    names = {e["name"] for e in complete}
    # serving runs with --ann, so the batch path traces the two-stage ANN
    # search (coarse probe + fine scoring + merge) instead of engine.topk
    for required in (
        "request", "cache.lookup", "flush",
        "ann.coarse", "ann.merge",
        "gateway.admit", "gateway.batch",
    ):
        check(required in names, f"trace is missing {required!r} spans")
    request_ids = {e["args"]["span_id"] for e in requests}
    lookups = [e for e in complete if e["name"] == "cache.lookup"]
    for lookup in lookups:
        check(
            lookup["args"]["parent_id"] in request_ids,
            "cache.lookup span is not parented to a request span",
        )
    # every non-root span must resolve to a recorded parent: no orphans
    for event in complete:
        parent = event["args"].get("parent_id")
        check(
            parent is None or parent in by_id,
            f"span {event['name']} references unknown parent {parent}",
        )


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    artifacts = sys.argv[1]
    trace_path = os.path.join(artifacts, "serve_trace.json")
    process = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve", artifacts,
            "--ann", "--gateway", "--metrics-port", "0", "--hold",
            "--trace-out", trace_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    port = None
    try:
        # The serve process prints its bound port, answers the dry-run
        # queries, writes the trace, then holds the endpoint open.
        deadline = time.monotonic() + 120
        transcript = []
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                check(False, f"serve exited early:\n{''.join(transcript)}")
            transcript.append(line)
            if line.startswith("metrics: http://"):
                port = int(line.split("127.0.0.1:")[1].split("/")[0])
            if line.startswith("holding metrics endpoint"):
                break
        check(port is not None, f"never saw the metrics URL:\n{''.join(transcript)}")

        base = f"http://127.0.0.1:{port}"
        health = json.loads(fetch(f"{base}/healthz"))
        check(health.get("status") == "ok", f"unexpected /healthz body: {health}")
        validate_exposition(fetch(f"{base}/metrics").decode())
        validate_stats(fetch(f"{base}/stats"))
        validate_trace(trace_path)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    finally:
        process.terminate()
        process.wait(timeout=15)
    print(
        f"PASS: /metrics parseable with {len(REQUIRED_FAMILIES)} core + "
        f"{len(GATEWAY_FAMILIES)} gateway families, /stats stable, "
        f"trace at {trace_path} complete"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
