"""Design-choice ablations beyond the paper's tables.

DESIGN.md calls out three implementation decisions the paper motivates in
prose but never tables; this bench quantifies each on the Yelp-like dataset:

* **self-loops** in Â (Section IV-A cites SGC: "adding self-loops is of
  significant importance") — expected to help;
* **number of convolution layers** (the paper uses one; 0 = plain lookup,
  2 = deeper smoothing) — one layer expected near the best;
* **loss form** — the literal Eq. 4 ``-ln(sigma(s_i) - sigma(s_j))`` vs the
  standard BPR ``-ln sigma(s_i - s_j)`` the reference implementation uses.
"""

import numpy as np

from benchmarks._harness import default_config, format_table, get_dataset, write_report
from repro.core import pup_full
from repro.eval import evaluate
from repro.train import TrainConfig, train_model


def _train(dataset, train_config=None, **pup_kwargs):
    model = pup_full(
        dataset, global_dim=56, category_dim=8, rng=np.random.default_rng(0), **pup_kwargs
    )
    train_model(model, dataset, train_config or default_config())
    return evaluate(model, dataset, ks=(50,))


def run_design_ablation():
    dataset = get_dataset("yelp")
    results = {}
    results["PUP (paper design)"] = _train(dataset)
    results["no self-loops"] = _train(dataset, self_loops=False)
    results["0 conv layers (lookup)"] = _train(dataset, n_layers=0)
    results["2 conv layers"] = _train(dataset, n_layers=2)

    eq4_config = default_config()
    eq4_config = TrainConfig(
        epochs=eq4_config.epochs,
        batch_size=eq4_config.batch_size,
        learning_rate=eq4_config.learning_rate,
        l2_weight=eq4_config.l2_weight,
        lr_milestones=eq4_config.lr_milestones,
        seed=eq4_config.seed,
        loss="bpr_eq4",
    )
    results["literal Eq.4 loss"] = _train(dataset, train_config=eq4_config)
    return results


def test_design_choice_ablation(benchmark):
    results = benchmark.pedantic(run_design_ablation, rounds=1, iterations=1)

    rows = [
        [name, f"{metrics['Recall@50']:.4f}", f"{metrics['NDCG@50']:.4f}"]
        for name, metrics in results.items()
    ]
    report = format_table(
        "Design ablation — PUP implementation choices (yelp-like)",
        ["configuration", "Recall@50", "NDCG@50"],
        rows,
        notes=[
            "expected: the paper design (1 conv layer, self-loops, BPR) is at",
            "or near the top; removing propagation (0 layers) costs accuracy;",
            "the literal Eq. 4 loss form trains but is less stable than BPR.",
        ],
    )
    write_report("ablation_design", report)

    paper = results["PUP (paper design)"]["Recall@50"]
    # Graph propagation is load-bearing.
    assert paper > results["0 conv layers (lookup)"]["Recall@50"]
    # The paper design should not be dominated by any single perturbation by
    # a wide margin (sanity that defaults are sensibly tuned).
    for name, metrics in results.items():
        assert paper >= metrics["Recall@50"] * 0.9, f"{name} dominates the paper design"
