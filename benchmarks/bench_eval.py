"""Evaluation-throughput benchmark: the parallel batch-inference runtime.

Measures end-to-end full-ranking evaluation (top-100 rankings over the
whole catalog + Recall/NDCG@{50,100}) for every test user of the synthetic
Yelp dataset under four execution arms:

* ``serial_baseline`` — a verbatim reimplementation of the evaluation loop
  as it stood before the runtime existed (frozen-branch scoring upcast to a
  float64 copy, per-user ``masked_topk`` with a Python ``sorted()`` per
  exclusion set, per-user scalar Recall/NDCG), measured in-run so every
  speedup is against this machine, not a stale number;
* ``serial``   — the batch runtime, one process (vectorized row kernels,
  scoring in the index dtype, preallocated buffers);
* ``threads4`` — the runtime over a 4-thread pool;
* ``procs4``   — the runtime over a 4-process pool (fork, copy-on-write
  transport, int32 wire format).

Each arm reuses one :class:`~repro.runtime.BatchRuntime` across repeats
(the steady-state shape of a validation loop or recurring bulk job; pool
startup is reported separately) and quotes the fastest of ``--reps``
passes, ``timeit``-style — the minimum is the least noise-contaminated
estimate on a shared box.

Every arm must produce bit-identical rankings and bit-identical metrics;
the benchmark asserts this and refuses to write numbers for divergent
results — speed that changes results is a bug, not a win.

Usage::

    python benchmarks/bench_eval.py            # full protocol, rewrites
                                               # BENCH_eval.json
    python benchmarks/bench_eval.py --smoke    # quick CI check against the
                                               # committed baseline
                                               # (>30% regression fails)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

import numpy as np

from repro.core.base import score_branches
from repro.data import load_dataset
from repro.eval.metrics import mean_metric, ndcg_at_k, recall_at_k
from repro.eval.ranking import evaluate, topk_rankings
from repro.eval.topk import masked_topk
from repro.experiments import PAPER_HPARAMS, build_model
from repro.nn import precision
from repro.runtime import BatchRuntime, RuntimeConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_eval.json")

KS = (50, 100)

ARMS = (
    ("serial", RuntimeConfig()),
    ("threads4", RuntimeConfig(workers=4, mode="thread")),
    ("procs4", RuntimeConfig(workers=4, mode="process")),
)

#: CI gate: fail when throughput drops below (1 - this) of the committed value
REGRESSION_TOLERANCE = 0.30


# ----------------------------------------------------------------------
# The pre-runtime evaluation path, verbatim (commit 2d61e65's eval loop):
# frozen once per pass, float64 upcast per chunk, per-user Python loops.
# ----------------------------------------------------------------------
def _baseline_chunk_scorer(model):
    export = getattr(model, "export_embeddings", None)
    if export is not None:
        try:
            branches = export()
        except NotImplementedError:
            pass
        else:
            return lambda users: score_branches(branches, users)
    return model.predict_scores


def baseline_evaluate(model, dataset, ks=KS, user_chunk: int = 256) -> tuple:
    """The pre-PR ``evaluate()``: returns (rankings, metrics)."""
    ks = sorted(set(int(k) for k in ks))
    positives = dataset.split_positive_sets("test")
    users = np.asarray(sorted(positives), dtype=np.int64)
    train_pos = dataset.train_positive_sets()
    scorer = _baseline_chunk_scorer(model)
    k = max(ks)
    rankings = {}
    for start in range(0, len(users), user_chunk):
        chunk = users[start : start + user_chunk]
        scores = np.array(scorer(chunk), dtype=np.float64)
        for row, user in enumerate(chunk):
            user = int(user)
            exclude = sorted(train_pos.get(user, ()))
            rankings[user] = masked_topk(scores[row], k, exclude_items=exclude or None)
    results = {}
    ordered = sorted(positives)
    for cutoff in ks:
        recalls = [recall_at_k(rankings[u], positives[u], cutoff) for u in ordered]
        ndcgs = [ndcg_at_k(rankings[u], positives[u], cutoff) for u in ordered]
        results[f"Recall@{cutoff}"] = mean_metric(recalls)
        results[f"NDCG@{cutoff}"] = mean_metric(ndcgs)
    return rankings, results


# ----------------------------------------------------------------------
def _best_of(fn, reps: int):
    """(best seconds, last result) over ``reps`` timed passes + 1 warmup."""
    fn()
    best = np.inf
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(scale: float, reps: int, arm_names=None) -> Dict:
    dataset, _ = load_dataset("yelp", seed=0, scale=scale)
    # Untrained weights: evaluation cost does not depend on weight values,
    # and the parity asserts below hold for any fixed weights.
    with precision("float32"):
        model = build_model("pup", dataset, seed=0, **PAPER_HPARAMS["pup"])
    model.eval()
    n_users = len(dataset.split_positive_sets("test"))

    arms: Dict[str, Dict] = {}
    seconds_baseline, (rankings_ref, metrics_ref) = _best_of(
        lambda: baseline_evaluate(model, dataset), reps
    )
    arms["serial_baseline"] = {
        "users_per_sec": n_users / seconds_baseline,
        "ms_per_pass": seconds_baseline * 1e3,
        "recipe": "pre-runtime eval loop: float64 upcast copy, per-user "
        "masked_topk + sorted(), per-user scalar Recall/NDCG",
    }
    print(
        f"  {'serial_baseline':<16} {arms['serial_baseline']['users_per_sec']:>9,.0f} users/s"
        f"  ({seconds_baseline*1e3:6.1f} ms/pass)"
    )

    branches = model.export_embeddings()
    exclude_csr = dataset.train_exclusion_csr()
    for name, config in ARMS:
        if arm_names is not None and name not in arm_names:
            continue
        created = time.perf_counter()
        runtime = BatchRuntime(branches, config, exclude_csr=exclude_csr)
        startup_ms = (time.perf_counter() - created) * 1e3
        try:
            if runtime.mode != ("serial" if config.workers == 0 else config.mode):
                print(f"  {name:<16} unavailable (fell back to {runtime.mode}); skipping")
                continue
            seconds, metrics = _best_of(
                lambda: evaluate(model, dataset, ks=KS, runtime=runtime), reps
            )
            rankings = topk_rankings(
                model, dataset, sorted(rankings_ref), k=max(KS), runtime=runtime
            )
        finally:
            runtime.close()

        if metrics != metrics_ref:
            print(f"FAIL: arm {name} metrics diverge from baseline", file=sys.stderr)
            raise SystemExit(1)
        for user in rankings_ref:
            if not np.array_equal(rankings[user], rankings_ref[user]):
                print(f"FAIL: arm {name} rankings diverge for user {user}", file=sys.stderr)
                raise SystemExit(1)

        arms[name] = {
            "users_per_sec": n_users / seconds,
            "ms_per_pass": seconds * 1e3,
            "pool_startup_ms": startup_ms,
            "speedup_vs_serial_baseline": (n_users / seconds) / arms["serial_baseline"]["users_per_sec"],
        }
        print(
            f"  {name:<16} {arms[name]['users_per_sec']:>9,.0f} users/s"
            f"  ({seconds*1e3:6.1f} ms/pass, {arms[name]['speedup_vs_serial_baseline']:.2f}x)"
        )

    return {
        "dataset": {
            "name": "yelp", "scale": scale, "seed": 0,
            "n_users": dataset.n_users, "n_items": dataset.n_items,
            "evaluated_users": n_users,
        },
        "protocol": {
            "precision": "float32", "model": "pup", "ks": list(KS),
            "warmup_passes": 1, "timed_passes": reps, "timing": "best of timed passes",
            "runtime_reuse": "one BatchRuntime per arm, reused across passes",
            "parity": "rankings and metrics bit-identical across all arms (asserted in-run)",
        },
        "arms": arms,
    }


def cmd_full(reps: int) -> int:
    print(f"full protocol (yelp scale 2.0, best of {reps} passes):")
    report = run_benchmark(scale=2.0, reps=reps)
    print(f"smoke protocol (yelp scale 1.0, best of {reps} passes):")
    smoke = run_benchmark(scale=1.0, reps=reps)

    required = {"procs4", "serial"}
    for result in (report, smoke):
        missing = required - set(result["arms"])
        if missing:  # pragma: no cover - restricted sandbox
            print(
                f"cannot write {BENCH_PATH}: arms {sorted(missing)} unavailable "
                "on this platform (pool fallback)",
                file=sys.stderr,
            )
            return 2

    speedup = report["arms"]["procs4"]["speedup_vs_serial_baseline"]
    payload = {
        "benchmark": "evaluation_throughput",
        **report,
        "speedup_procs4_vs_serial_baseline": round(speedup, 3),
        "speedup_serial_vs_serial_baseline": round(
            report["arms"]["serial"]["speedup_vs_serial_baseline"], 3
        ),
        "smoke_reference": {
            "dataset": smoke["dataset"],
            "protocol": smoke["protocol"],
            "serial_baseline_users_per_sec": smoke["arms"]["serial_baseline"]["users_per_sec"],
            "procs4_users_per_sec": smoke["arms"]["procs4"]["users_per_sec"],
        },
    }
    with open(BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"\nprocs4 is {speedup:.2f}x the in-run serial baseline "
        f"({report['arms']['serial_baseline']['users_per_sec']:,.0f} users/s); "
        f"serial alone is {report['arms']['serial']['speedup_vs_serial_baseline']:.2f}x"
    )
    print(f"wrote {BENCH_PATH}")
    return 0


def cmd_smoke(reps: int) -> int:
    """CI check: re-measure the smoke protocol, compare to the committed file.

    Absolute users/sec is machine-dependent, so the gate normalizes by
    machine speed: the in-run ``serial_baseline`` arm re-measures the same
    hardware, and the check is that ``procs4`` did not lose more than the
    tolerance relative to its *expected* throughput on this machine
    (``committed_procs4 * measured_baseline / committed_baseline``).
    Parity (rankings/metrics identical across arms) is always re-asserted.
    """
    if not os.path.exists(BENCH_PATH):
        print(f"missing committed baseline {BENCH_PATH}; run without --smoke first", file=sys.stderr)
        return 2
    with open(BENCH_PATH) as handle:
        committed = json.load(handle)
    reference = committed["smoke_reference"]
    scale = reference["dataset"]["scale"]

    print(f"smoke protocol (yelp scale {scale}, best of {reps} passes):")
    report = run_benchmark(scale=scale, reps=reps, arm_names=("procs4",))
    if "procs4" not in report["arms"]:  # pragma: no cover - restricted sandbox
        print("process pools unavailable; skipping throughput gate")
        return 0
    measured = report["arms"]["procs4"]["users_per_sec"]
    machine_factor = (
        report["arms"]["serial_baseline"]["users_per_sec"]
        / reference["serial_baseline_users_per_sec"]
    )
    expected = reference["procs4_users_per_sec"] * machine_factor
    floor = (1.0 - REGRESSION_TOLERANCE) * expected

    print(
        f"\nprocs4: {measured:,.0f} users/s; expected on this machine "
        f"{expected:,.0f} (committed {reference['procs4_users_per_sec']:,.0f} "
        f"x machine factor {machine_factor:.2f}); floor {floor:,.0f}"
    )
    if measured < floor:
        print(
            f"FAIL: users/sec regressed more than {REGRESSION_TOLERANCE:.0%} "
            "against the committed BENCH_eval.json baseline",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick regression check against the committed BENCH_eval.json",
    )
    parser.add_argument("--reps", type=int, default=None, help="timed passes per arm")
    args = parser.parse_args()
    reps = args.reps if args.reps is not None else (3 if args.smoke else 7)
    return cmd_smoke(reps) if args.smoke else cmd_full(reps)


if __name__ == "__main__":
    raise SystemExit(main())
